package colstore

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"strdict/internal/dict"
)

// DefaultMergeInterval is the daemon's timer period when Interval is unset.
const DefaultMergeInterval = 50 * time.Millisecond

// MergeScheduler drives the write-optimized-to-read-optimized merges of a
// store, the moment Section 5 attaches the format decision to: "depending
// on the usage of a table, the write-optimized store ... runs full sooner
// or later and needs to be merged". It watches delta sizes, triggers merges
// when a column's delta exceeds the threshold, and tracks each column's
// observed merge interval — the lifetime(d) that normalizes the manager's
// time dimension.
//
// The scheduler runs in two modes. Cooperative: the ingest path calls Tick
// periodically. Daemon: Start spawns a long-running goroutine with its own
// timer that replaces cooperative Tick calls entirely, optionally installs
// append backpressure (HighWaterMark), and Close shuts it down gracefully,
// draining every remaining delta via Flush.
//
// A policy layer picks per column between two merge kinds. A full merge
// rebuilds the whole main part and consults the Chooser, so the dictionary
// format may change — the right move when the threshold is crossed on a
// cooling column, where the rebuild is amortized over a long lifetime. A
// partial fold (PartialMerges) folds only the oldest sealed delta segments,
// keeping the format — the right move on a hot column under backpressure,
// where paying a full dictionary rebuild per kick is exactly the
// access-latency cost adaptive compression tries to avoid. Hotness comes
// from a per-column append-rate estimate (exponentially weighted, updated
// each pass) that can also drive the daemon timer (AdaptiveInterval): idle
// stores wake rarely, hot stores merge continuously.
//
// Due columns merge concurrently on a bounded worker pool (Parallelism
// workers, GOMAXPROCS by default); each column's merge follows the
// seal-build-publish protocol of StringColumn, so queries keep running
// against the old version until the atomic publish. The Chooser is invoked
// from pool workers and must therefore be safe for concurrent use
// (core.Manager is). Tick and Flush are serialized against each other
// internally; bookkeeping is lock-protected and may be read concurrently
// via LifetimeNs, ColumnMergeStats and AppendRate.
type MergeScheduler struct {
	store *Store
	// DeltaRowThreshold triggers a merge once a column's delta holds at
	// least this many rows.
	DeltaRowThreshold int
	// Chooser decides the format at merge time from a snapshot pinning the
	// column's pre-merge state (dictionary, counters, sizes); nil keeps each
	// column's current format (fixed-format operation). It runs on pool
	// workers, so it must be goroutine-safe when Parallelism != 1. Partial
	// folds never consult it: they keep the current format by design.
	Chooser func(snap *Snapshot, lifetimeNs float64) dict.Format
	// Parallelism bounds the worker pool merging due columns; 0 means
	// GOMAXPROCS, 1 restores the serial path.
	Parallelism int
	// BuildParallelism is handed to each column merge's dictionary build
	// (dict.BuildOptions.Parallelism); <= 1 builds each dictionary serially.
	BuildParallelism int

	// PartialMerges enables the partial-fold path: backpressure kicks (and
	// timer passes over columns appending at or above the hot rate) fold
	// only enough oldest sealed segments to bring the delta back under the
	// threshold, instead of draining it with a full rebuild. Flush (and
	// therefore Close) always merges fully. Set before Start.
	PartialMerges bool
	// HotRowsPerSec is the append rate at or above which a column counts as
	// hot for the partial policy; <= 0 derives DeltaRowThreshold rows/sec
	// (the column refills a whole delta every second). Set before Start.
	HotRowsPerSec float64
	// AdaptiveInterval derives the daemon's timer period from observed
	// append rates: the period targets two passes per delta fill for the
	// hottest column, quantized to a power-of-two ladder within
	// [Interval/8, Interval*8]. Set before Start.
	AdaptiveInterval bool

	// Interval is the daemon's timer period (the adaptive ladder's base when
	// AdaptiveInterval is set); 0 means DefaultMergeInterval. Set before
	// Start.
	Interval time.Duration
	// HighWaterMark, when > 0, makes Append block once a column's active
	// (unsealed) delta reaches this many rows, kicking the daemon for an
	// immediate merge pass. Backpressure is installed by Start and removed
	// by Close. Set before Start.
	HighWaterMark int

	// OnError, when non-nil, is invoked with the column just merged when the
	// store's journal reports a sticky durability failure afterwards (the
	// Journal interface has no error returns — see JournalHealth). It runs
	// on pool workers, so it must be goroutine-safe; the same error is
	// reported once, not once per merged column. Set before Start.
	OnError func(column string, err error)

	// tickMu serializes Tick/Flush invocations so two overlapping calls
	// cannot dispatch the same column to two workers.
	tickMu sync.Mutex

	errMu   sync.Mutex
	lastErr string // last journal error text reported through OnError

	mu    sync.Mutex // guards stats
	stats map[string]*colMergeState

	now func() time.Time // injectable clock for tests
	// newTicker is the injectable timer source for the daemon loop; nil
	// means time.NewTicker. It returns the tick channel and a stop func.
	newTicker func(d time.Duration) (<-chan time.Time, func())

	// Daemon state. kick is created once (never replaced), so Kick needs no
	// lock and cannot deadlock against Close — Append calls Kick while
	// holding a column's append mutex. daemonMu serializes Start and Close
	// in full: Close holds it across the daemon wait and backpressure
	// strip, so Start can never observe a half-closed scheduler.
	kick     chan struct{}
	daemonMu sync.Mutex
	cancel   context.CancelFunc
	done     chan struct{}
}

// colMergeState is the per-column bookkeeping: full-merge interval (the
// lifetime(d) fed to the Chooser), merge counters by kind, rewrite volumes,
// and the append-rate estimate.
type colMergeState struct {
	lastFull         time.Time     // completion time of the last full merge that folded rows
	lastFullInterval time.Duration // interval between the last two such merges
	full, partial    int           // merges that actually folded rows, by kind
	rowsFolded       uint64        // delta rows moved into main, cumulative
	rowsRewritten    uint64        // rows re-encoded into new code vectors, cumulative

	lastRows   int64     // Len() at the last rate observation
	lastRateAt time.Time // time of the last rate observation
	rateValid  bool      // at least one complete measurement exists
	ratePerSec float64   // EWMA of the append rate
}

// MergeStats summarizes one column's merge history. Full and Partial count
// only merges that actually folded rows — dispatches that found a drained
// delta are skipped and recorded nowhere.
type MergeStats struct {
	// Full and Partial count merges by kind.
	Full, Partial int
	// RowsFolded is the cumulative number of delta rows moved into the main
	// part; RowsRewritten the cumulative number of rows re-encoded into new
	// code vectors (the work a merge actually pays for).
	RowsFolded, RowsRewritten uint64
	// LastFullInterval is the interval between the last two full merges
	// (zero until the column has fully merged twice). Partial folds do not
	// shrink it — see LifetimeNs.
	LastFullInterval time.Duration
	// AppendRate is the current append-rate estimate in rows/sec.
	AppendRate float64
}

// NewMergeScheduler returns a scheduler over the store's string columns.
func NewMergeScheduler(s *Store, deltaRowThreshold int) *MergeScheduler {
	return &MergeScheduler{
		store:             s,
		DeltaRowThreshold: deltaRowThreshold,
		stats:             make(map[string]*colMergeState),
		now:               time.Now,
		kick:              make(chan struct{}, 1),
	}
}

// stat returns the column's bookkeeping entry, creating it if needed. The
// caller must hold mu.
func (m *MergeScheduler) stat(col string) *colMergeState {
	st, ok := m.stats[col]
	if !ok {
		st = &colMergeState{}
		m.stats[col] = st
	}
	return st
}

// LifetimeNs returns the column's last observed full-merge interval in
// nanoseconds, or the fallback if it has not fully merged twice yet. Only
// merges that actually folded rows count, and partial folds are excluded:
// lifetime(d) normalizes the manager's time dimension by how long a format
// decision lives, and a partial fold neither makes nor invalidates one.
// Partial-fold history is reported separately via ColumnMergeStats.
func (m *MergeScheduler) LifetimeNs(col string, fallback float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.stats[col]; ok && st.lastFullInterval > 0 {
		return float64(st.lastFullInterval)
	}
	return fallback
}

// ColumnMergeStats returns the column's merge bookkeeping.
func (m *MergeScheduler) ColumnMergeStats(col string) MergeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.stats[col]
	if !ok {
		return MergeStats{}
	}
	return MergeStats{
		Full:             st.full,
		Partial:          st.partial,
		RowsFolded:       st.rowsFolded,
		RowsRewritten:    st.rowsRewritten,
		LastFullInterval: st.lastFullInterval,
		AppendRate:       st.ratePerSec,
	}
}

// AppendRate returns the column's current append-rate estimate in rows per
// second (0 until two passes have observed it).
func (m *MergeScheduler) AppendRate(col string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.stats[col]; ok && st.rateValid {
		return st.ratePerSec
	}
	return 0
}

// Start launches the background merge daemon: a goroutine that runs a merge
// pass every Interval and immediately when kicked by backpressure, without
// any cooperative Tick calls from the ingest path. If HighWaterMark > 0 it
// installs append backpressure on every string column of the store (columns
// must be defined before Start, per the package DDL rule). Starting an
// already-running daemon is a no-op; a Start concurrent with Close blocks
// until the Close has fully finished, then starts fresh. The daemon stops
// when ctx is cancelled or Close is called.
func (m *MergeScheduler) Start(ctx context.Context) {
	m.daemonMu.Lock()
	defer m.daemonMu.Unlock()
	if m.done != nil {
		return
	}
	interval := m.Interval
	if interval <= 0 {
		interval = DefaultMergeInterval
	}
	newTicker := m.newTicker
	if newTicker == nil {
		newTicker = func(d time.Duration) (<-chan time.Time, func()) {
			t := time.NewTicker(d)
			return t.C, t.Stop
		}
	}
	if m.HighWaterMark > 0 {
		for _, c := range m.store.StringColumns() {
			c.setBackpressure(m.HighWaterMark, m.Kick)
		}
	}
	ctx, m.cancel = context.WithCancel(ctx)
	m.done = make(chan struct{})
	go m.run(ctx, m.done, interval, newTicker)
}

// run is the daemon loop.
func (m *MergeScheduler) run(ctx context.Context, done chan struct{}, base time.Duration, newTicker func(time.Duration) (<-chan time.Time, func())) {
	defer close(done)
	cur := base
	tick, stop := newTicker(cur)
	defer func() { stop() }()
	for {
		select {
		case <-ctx.Done():
			return
		case <-m.kick:
			// Backpressure engaged: merge columns at or past the high-water
			// mark even when below the regular threshold, so the throttled
			// appender is released as soon as its segment seals.
			threshold := m.DeltaRowThreshold
			if m.HighWaterMark > 0 && m.HighWaterMark < threshold {
				threshold = m.HighWaterMark
			}
			m.tickAt(threshold, modeKick)
		case <-tick:
			m.tickAt(m.DeltaRowThreshold, modeTimer)
		}
		if m.AdaptiveInterval {
			if want := m.adaptiveInterval(base); want != cur {
				stop()
				tick, stop = newTicker(want)
				cur = want
			}
		}
	}
}

// adaptiveInterval derives the timer period from the hottest column's
// append rate: two passes per delta fill, quantized to the power-of-two
// ladder [base/8, base*8]. With no rate measurements yet it stays at base;
// a fully idle store settles on the slowest rung.
func (m *MergeScheduler) adaptiveInterval(base time.Duration) time.Duration {
	maxRate, seen := 0.0, false
	m.mu.Lock()
	for _, st := range m.stats {
		if st.rateValid {
			seen = true
			if st.ratePerSec > maxRate {
				maxRate = st.ratePerSec
			}
		}
	}
	m.mu.Unlock()
	if !seen {
		return base
	}
	if maxRate <= 0 {
		return 8 * base
	}
	desired := time.Duration(float64(m.DeltaRowThreshold) / (2 * maxRate) * float64(time.Second))
	best := base / 8
	if best <= 0 {
		best = base
	}
	for r := best * 2; r <= 8*base && r <= desired; r *= 2 {
		best = r
	}
	return best
}

// Kick requests an immediate merge pass from a running daemon. It never
// blocks and is safe from any goroutine — including a backpressured Append
// holding its column's append mutex.
func (m *MergeScheduler) Kick() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// Close stops the daemon goroutine (waiting for it to exit), removes append
// backpressure, and drains every remaining delta via Flush. A scheduler
// that was never started just flushes. The scheduler may be started again
// afterwards.
//
// Close holds the daemon lock for its entire duration, so a concurrent
// Start cannot interleave with the shutdown: it either runs to completion
// before Close begins, or blocks until Close has stopped the daemon and
// stripped backpressure, then starts a fresh daemon. Without this, a Start
// racing the wait could observe the cleared daemon state, spawn a second
// daemon, and install a high-water mark the in-flight Close immediately
// removes — leaving a daemon with no backpressure, or two tickers.
func (m *MergeScheduler) Close() error {
	m.daemonMu.Lock()
	defer m.daemonMu.Unlock()
	if m.cancel != nil {
		m.cancel()
		<-m.done
		m.cancel, m.done = nil, nil
	}
	for _, c := range m.store.StringColumns() {
		c.setBackpressure(0, nil)
	}
	m.Flush()
	return nil
}

// mergeMode tells the merge pass what triggered it: the daemon timer, a
// backpressure kick, or a drain (Flush/Close). The policy layer uses it —
// kicks prefer partial folds on a hot column, drains always merge fully.
type mergeMode int

const (
	modeTimer mergeMode = iota
	modeKick
	modeFlush
)

// Tick checks every string column and merges those whose delta (sealed +
// active segments) crossed the threshold, consulting the Chooser for the
// new format. Due columns merge in parallel on the scheduler's worker pool.
// It returns the names of the columns that actually merged, in store order
// — the order Store.StringColumns lists them, regardless of which worker
// ran which merge. A column collected as due but drained by the time a
// worker claimed it (a racing scheduler or explicit Merge) is skipped and
// not reported.
func (m *MergeScheduler) Tick() []string {
	return m.tickAt(m.DeltaRowThreshold, modeTimer)
}

// tickAt is Tick with an explicit threshold (the daemon's kick path lowers
// it to the high-water mark) and trigger mode.
func (m *MergeScheduler) tickAt(threshold int, mode mergeMode) []string {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	cols := m.store.StringColumns()
	m.observeRates(cols)
	var due []*StringColumn
	for _, c := range cols {
		if c.DeltaRows() >= threshold {
			due = append(due, c)
		}
	}
	return m.mergeColumns(due, mode)
}

// Flush merges every column that has any delta rows, regardless of the
// threshold (shutdown / checkpoint path). Flush always merges fully — a
// partial fold would leave sealed segments behind, defeating the drain.
func (m *MergeScheduler) Flush() []string {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	cols := m.store.StringColumns()
	m.observeRates(cols)
	var due []*StringColumn
	for _, c := range cols {
		if c.DeltaRows() > 0 {
			due = append(due, c)
		}
	}
	return m.mergeColumns(due, modeFlush)
}

// observeRates updates every column's append-rate estimate (EWMA over the
// rows appended since the previous pass). Passes with a non-advancing clock
// (injected clocks in tests) are skipped. Caller holds tickMu.
func (m *MergeScheduler) observeRates(cols []*StringColumn) {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range cols {
		st := m.stat(c.Name())
		rows := int64(c.Len())
		if st.lastRateAt.IsZero() {
			st.lastRows, st.lastRateAt = rows, now
			continue
		}
		elapsed := now.Sub(st.lastRateAt).Seconds()
		if elapsed <= 0 {
			continue
		}
		inst := float64(rows-st.lastRows) / elapsed
		if st.rateValid {
			st.ratePerSec = 0.5*st.ratePerSec + 0.5*inst
		} else {
			st.ratePerSec = inst
			st.rateValid = true
		}
		st.lastRows, st.lastRateAt = rows, now
	}
}

// mergeColumns merges the due columns on a bounded worker pool and returns
// the names of those that actually folded rows, in store order — the order
// they were collected, which is also the serial path's merge order. Workers
// claim columns off an atomic cursor, so completion order varies, but the
// returned slice does not.
func (m *MergeScheduler) mergeColumns(due []*StringColumn, mode mergeMode) []string {
	if len(due) == 0 {
		return nil
	}
	merged := make([]bool, len(due))
	workers := m.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(due) {
		workers = len(due)
	}

	if workers <= 1 {
		for i, c := range due {
			merged[i] = m.mergeColumn(c, mode)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(due) {
						return
					}
					merged[i] = m.mergeColumn(due[i], mode)
				}
			}()
		}
		wg.Wait()
	}

	var names []string
	for i, c := range due {
		if merged[i] {
			names = append(names, c.Name())
		}
	}
	return names
}

// usePartial decides the merge kind for one due column: partial when the
// pass was a backpressure kick (the stalled appender is hotness made
// manifest) or when the column's append rate marks it hot; full otherwise.
func (m *MergeScheduler) usePartial(c *StringColumn, mode mergeMode) bool {
	if !m.PartialMerges || mode == modeFlush {
		return false
	}
	if mode == modeKick {
		return true
	}
	hot := m.HotRowsPerSec
	if hot <= 0 {
		hot = float64(m.DeltaRowThreshold)
	}
	return m.AppendRate(c.Name()) >= hot
}

// partialFoldCount picks how many oldest sealed segments a partial fold
// should cover: just enough to bring the delta back under the threshold
// (with the seal releasing the blocked appender), and always at least one
// segment so the boundary advances.
func (m *MergeScheduler) partialFoldCount(c *StringColumn) int {
	v := c.version.Load()
	excess := c.DeltaRows() - m.DeltaRowThreshold
	k, folded := 0, 0
	for _, seg := range v.sealed {
		if k >= 1 && folded >= excess {
			break
		}
		k++
		folded += len(seg.rows)
	}
	if k == 0 {
		k = 1 // nothing sealed yet: fold the segment the merge will seal
	}
	return k
}

// mergeColumn runs one column's merge under the policy layer, returning
// whether any rows were folded.
func (m *MergeScheduler) mergeColumn(c *StringColumn, mode mergeMode) bool {
	// Re-check under the claim: the column may have been drained between
	// collection and this worker claiming it (another scheduler, an
	// explicit Merge, or the kick path racing the timer path). Running the
	// merge anyway would rebuild the whole dictionary over an empty delta
	// and skew the lifetime bookkeeping below.
	if c.DeltaRows() == 0 {
		return false
	}
	name := c.Name()
	// The merge is stamped at dispatch time: the interval bookkeeping then
	// measures merge-to-merge distance independent of build duration (and
	// the injected test clocks only need to advance between passes).
	start := m.now()
	opts := MergeOptions{BuildParallelism: m.BuildParallelism}

	if m.usePartial(c, mode) {
		res := c.MergePartialWithOptions(m.partialFoldCount(c), opts)
		m.record(name, start, res, false)
		m.reportJournalErr(name)
		return res.Folded > 0
	}

	format := c.Format()
	if m.Chooser != nil {
		// The Chooser reads a snapshot pinning the pre-merge state: one
		// consistent (dict, codes, counters) view, unaffected by appends or
		// other merges racing this decision.
		snap := c.Snapshot()
		lifetime := m.LifetimeNs(name, float64(time.Minute))
		format = m.Chooser(snap, lifetime)
		snap.Release()
	}
	res := c.MergeWithOptions(format, opts)
	m.record(name, start, res, true)
	m.reportJournalErr(name)
	return res.Folded > 0
}

// reportJournalErr surfaces a sticky journal failure through OnError after
// a merge. The journal error is store-wide and sticky, so it is reported on
// its first observation only, not once per merged column.
func (m *MergeScheduler) reportJournalErr(column string) {
	if m.OnError == nil {
		return
	}
	err := m.store.JournalErr()
	if err == nil {
		return
	}
	m.errMu.Lock()
	dup := m.lastErr == err.Error()
	if !dup {
		m.lastErr = err.Error()
	}
	m.errMu.Unlock()
	if !dup {
		m.OnError(column, err)
	}
}

// record books a finished merge. Merges that folded nothing leave the
// bookkeeping untouched: a no-op pass (or a drained-by-race dispatch) must
// not shrink the observed merge interval that normalizes the manager's
// time dimension, and partial folds are counted separately so LifetimeNs
// keeps describing full-merge lifetimes only.
func (m *MergeScheduler) record(name string, now time.Time, res MergeResult, full bool) {
	if res.Folded == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stat(name)
	st.rowsFolded += uint64(res.Folded)
	st.rowsRewritten += uint64(res.Rewritten)
	if full {
		st.full++
		if !st.lastFull.IsZero() {
			st.lastFullInterval = now.Sub(st.lastFull)
		}
		st.lastFull = now
	} else {
		st.partial++
	}
}

package colstore

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"strdict/internal/dict"
)

// MergeScheduler drives the write-optimized-to-read-optimized merges of a
// store, the moment Section 5 attaches the format decision to: "depending
// on the usage of a table, the write-optimized store ... runs full sooner
// or later and needs to be merged". It watches delta sizes, triggers merges
// when a column's delta exceeds the threshold, and tracks each column's
// observed merge interval — the lifetime(d) that normalizes the manager's
// time dimension.
//
// Due columns merge concurrently on a bounded worker pool (Parallelism
// workers, GOMAXPROCS by default); each column's merge follows the
// snapshot-build-swap protocol of StringColumn, so queries keep running
// against the old state until the swap. The Chooser is invoked from pool
// workers and must therefore be safe for concurrent use (core.Manager is).
// Tick and Flush themselves are serialized against each other internally;
// interval bookkeeping is lock-protected and may be read concurrently via
// LifetimeNs.
type MergeScheduler struct {
	store *Store
	// DeltaRowThreshold triggers a merge once a column's delta holds at
	// least this many rows.
	DeltaRowThreshold int
	// Chooser decides the format at merge time; nil keeps each column's
	// current format (fixed-format operation). It runs on pool workers, so
	// it must be goroutine-safe when Parallelism != 1.
	Chooser func(c *StringColumn, lifetimeNs float64) dict.Format
	// Parallelism bounds the worker pool merging due columns; 0 means
	// GOMAXPROCS, 1 restores the serial path.
	Parallelism int
	// BuildParallelism is handed to each column merge's dictionary build
	// (dict.BuildOptions.Parallelism); <= 1 builds each dictionary serially.
	BuildParallelism int

	// tickMu serializes Tick/Flush invocations so two overlapping calls
	// cannot dispatch the same column to two workers.
	tickMu sync.Mutex

	mu           sync.Mutex // guards the interval maps below
	lastMerge    map[string]time.Time
	lastInterval map[string]time.Duration

	now func() time.Time // injectable clock for tests
}

// NewMergeScheduler returns a scheduler over the store's string columns.
func NewMergeScheduler(s *Store, deltaRowThreshold int) *MergeScheduler {
	return &MergeScheduler{
		store:             s,
		DeltaRowThreshold: deltaRowThreshold,
		lastMerge:         make(map[string]time.Time),
		lastInterval:      make(map[string]time.Duration),
		now:               time.Now,
	}
}

// LifetimeNs returns the column's last observed merge interval in
// nanoseconds, or the fallback if it has not merged twice yet.
func (m *MergeScheduler) LifetimeNs(col string, fallback float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if iv, ok := m.lastInterval[col]; ok && iv > 0 {
		return float64(iv)
	}
	return fallback
}

// DeltaRows returns the number of delta rows of a column.
func (c *StringColumn) DeltaRows() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.deltaRows)
}

// Tick checks every string column and merges those whose delta crossed the
// threshold, consulting the Chooser for the new format. Due columns merge
// in parallel on the scheduler's worker pool. It returns the names of the
// merged columns in store order.
func (m *MergeScheduler) Tick() []string {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	var due []*StringColumn
	for _, c := range m.store.StringColumns() {
		if c.DeltaRows() >= m.DeltaRowThreshold {
			due = append(due, c)
		}
	}
	return m.mergeColumns(due)
}

// Flush merges every column that has any delta rows, regardless of the
// threshold (shutdown / checkpoint path).
func (m *MergeScheduler) Flush() []string {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	var due []*StringColumn
	for _, c := range m.store.StringColumns() {
		if c.DeltaRows() > 0 {
			due = append(due, c)
		}
	}
	return m.mergeColumns(due)
}

// mergeColumns merges the due columns on a bounded worker pool and returns
// their names in dispatch order (matching the serial path's output).
func (m *MergeScheduler) mergeColumns(due []*StringColumn) []string {
	if len(due) == 0 {
		return nil
	}
	workers := m.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(due) {
		workers = len(due)
	}

	if workers <= 1 {
		for _, c := range due {
			m.mergeColumn(c)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(due) {
						return
					}
					m.mergeColumn(due[i])
				}
			}()
		}
		wg.Wait()
	}

	names := make([]string, len(due))
	for i, c := range due {
		names[i] = c.Name()
	}
	return names
}

func (m *MergeScheduler) mergeColumn(c *StringColumn) {
	now := m.now()
	name := c.Name()
	m.mu.Lock()
	if prev, ok := m.lastMerge[name]; ok {
		m.lastInterval[name] = now.Sub(prev)
	}
	m.lastMerge[name] = now
	m.mu.Unlock()

	format := c.Format()
	if m.Chooser != nil {
		lifetime := m.LifetimeNs(name, float64(time.Minute))
		format = m.Chooser(c, lifetime)
	}
	c.MergeWithOptions(format, MergeOptions{BuildParallelism: m.BuildParallelism})
}

package colstore

import (
	"time"

	"strdict/internal/dict"
)

// MergeScheduler drives the write-optimized-to-read-optimized merges of a
// store, the moment Section 5 attaches the format decision to: "depending
// on the usage of a table, the write-optimized store ... runs full sooner
// or later and needs to be merged". It watches delta sizes, triggers merges
// when a column's delta exceeds the threshold, and tracks each column's
// observed merge interval — the lifetime(d) that normalizes the manager's
// time dimension.
type MergeScheduler struct {
	store *Store
	// DeltaRowThreshold triggers a merge once a column's delta holds at
	// least this many rows.
	DeltaRowThreshold int
	// Chooser decides the format at merge time; nil keeps each column's
	// current format (fixed-format operation).
	Chooser func(c *StringColumn, lifetimeNs float64) dict.Format

	lastMerge    map[string]time.Time
	lastInterval map[string]time.Duration
	now          func() time.Time // injectable clock for tests
}

// NewMergeScheduler returns a scheduler over the store's string columns.
func NewMergeScheduler(s *Store, deltaRowThreshold int) *MergeScheduler {
	return &MergeScheduler{
		store:             s,
		DeltaRowThreshold: deltaRowThreshold,
		lastMerge:         make(map[string]time.Time),
		lastInterval:      make(map[string]time.Duration),
		now:               time.Now,
	}
}

// LifetimeNs returns the column's last observed merge interval in
// nanoseconds, or the fallback if it has not merged twice yet.
func (m *MergeScheduler) LifetimeNs(col string, fallback float64) float64 {
	if iv, ok := m.lastInterval[col]; ok && iv > 0 {
		return float64(iv)
	}
	return fallback
}

// DeltaRows returns the number of delta rows of a column.
func (c *StringColumn) DeltaRows() int { return len(c.deltaRows) }

// Tick checks every string column and merges those whose delta crossed the
// threshold, consulting the Chooser for the new format. It returns the
// names of the merged columns.
func (m *MergeScheduler) Tick() []string {
	var merged []string
	for _, c := range m.store.StringColumns() {
		if c.DeltaRows() < m.DeltaRowThreshold {
			continue
		}
		m.mergeColumn(c)
		merged = append(merged, c.Name())
	}
	return merged
}

// Flush merges every column that has any delta rows, regardless of the
// threshold (shutdown / checkpoint path).
func (m *MergeScheduler) Flush() []string {
	var merged []string
	for _, c := range m.store.StringColumns() {
		if c.DeltaRows() == 0 {
			continue
		}
		m.mergeColumn(c)
		merged = append(merged, c.Name())
	}
	return merged
}

func (m *MergeScheduler) mergeColumn(c *StringColumn) {
	now := m.now()
	name := c.Name()
	if prev, ok := m.lastMerge[name]; ok {
		m.lastInterval[name] = now.Sub(prev)
	}
	m.lastMerge[name] = now

	format := c.Format()
	if m.Chooser != nil {
		lifetime := m.LifetimeNs(name, float64(time.Minute))
		format = m.Chooser(c, lifetime)
	}
	c.Merge(format)
}

package colstore

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"strdict/internal/dict"
)

// DefaultMergeInterval is the daemon's timer period when Interval is unset.
const DefaultMergeInterval = 50 * time.Millisecond

// MergeScheduler drives the write-optimized-to-read-optimized merges of a
// store, the moment Section 5 attaches the format decision to: "depending
// on the usage of a table, the write-optimized store ... runs full sooner
// or later and needs to be merged". It watches delta sizes, triggers merges
// when a column's delta exceeds the threshold, and tracks each column's
// observed merge interval — the lifetime(d) that normalizes the manager's
// time dimension.
//
// The scheduler runs in two modes. Cooperative: the ingest path calls Tick
// periodically. Daemon: Start spawns a long-running goroutine with its own
// timer that replaces cooperative Tick calls entirely, optionally installs
// append backpressure (HighWaterMark), and Close shuts it down gracefully,
// draining every remaining delta via Flush.
//
// Due columns merge concurrently on a bounded worker pool (Parallelism
// workers, GOMAXPROCS by default); each column's merge follows the
// seal-build-publish protocol of StringColumn, so queries keep running
// against the old version until the atomic publish. The Chooser is invoked
// from pool workers and must therefore be safe for concurrent use
// (core.Manager is). Tick and Flush are serialized against each other
// internally; interval bookkeeping is lock-protected and may be read
// concurrently via LifetimeNs.
type MergeScheduler struct {
	store *Store
	// DeltaRowThreshold triggers a merge once a column's delta holds at
	// least this many rows.
	DeltaRowThreshold int
	// Chooser decides the format at merge time from a snapshot pinning the
	// column's pre-merge state (dictionary, counters, sizes); nil keeps each
	// column's current format (fixed-format operation). It runs on pool
	// workers, so it must be goroutine-safe when Parallelism != 1.
	Chooser func(snap *Snapshot, lifetimeNs float64) dict.Format
	// Parallelism bounds the worker pool merging due columns; 0 means
	// GOMAXPROCS, 1 restores the serial path.
	Parallelism int
	// BuildParallelism is handed to each column merge's dictionary build
	// (dict.BuildOptions.Parallelism); <= 1 builds each dictionary serially.
	BuildParallelism int

	// Interval is the daemon's timer period; 0 means DefaultMergeInterval.
	// Set before Start.
	Interval time.Duration
	// HighWaterMark, when > 0, makes Append block once a column's active
	// (unsealed) delta reaches this many rows, kicking the daemon for an
	// immediate merge pass. Backpressure is installed by Start and removed
	// by Close. Set before Start.
	HighWaterMark int

	// tickMu serializes Tick/Flush invocations so two overlapping calls
	// cannot dispatch the same column to two workers.
	tickMu sync.Mutex

	mu           sync.Mutex // guards the interval maps below
	lastMerge    map[string]time.Time
	lastInterval map[string]time.Duration

	now func() time.Time // injectable clock for tests
	// newTicker is the injectable timer source for the daemon loop; nil
	// means time.NewTicker. It returns the tick channel and a stop func.
	newTicker func(d time.Duration) (<-chan time.Time, func())

	// Daemon state. kick is created once (never replaced), so Kick needs no
	// lock and cannot deadlock against Close — Append calls Kick while
	// holding a column's append mutex.
	kick     chan struct{}
	daemonMu sync.Mutex // guards cancel/done across Start/Close
	cancel   context.CancelFunc
	done     chan struct{}
}

// NewMergeScheduler returns a scheduler over the store's string columns.
func NewMergeScheduler(s *Store, deltaRowThreshold int) *MergeScheduler {
	return &MergeScheduler{
		store:             s,
		DeltaRowThreshold: deltaRowThreshold,
		lastMerge:         make(map[string]time.Time),
		lastInterval:      make(map[string]time.Duration),
		now:               time.Now,
		kick:              make(chan struct{}, 1),
	}
}

// LifetimeNs returns the column's last observed merge interval in
// nanoseconds, or the fallback if it has not merged twice yet.
func (m *MergeScheduler) LifetimeNs(col string, fallback float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if iv, ok := m.lastInterval[col]; ok && iv > 0 {
		return float64(iv)
	}
	return fallback
}

// Start launches the background merge daemon: a goroutine that runs a merge
// pass every Interval and immediately when kicked by backpressure, without
// any cooperative Tick calls from the ingest path. If HighWaterMark > 0 it
// installs append backpressure on every string column of the store (columns
// must be defined before Start, per the package DDL rule). Starting an
// already-running daemon is a no-op. The daemon stops when ctx is cancelled
// or Close is called.
func (m *MergeScheduler) Start(ctx context.Context) {
	m.daemonMu.Lock()
	defer m.daemonMu.Unlock()
	if m.done != nil {
		return
	}
	interval := m.Interval
	if interval <= 0 {
		interval = DefaultMergeInterval
	}
	newTicker := m.newTicker
	if newTicker == nil {
		newTicker = func(d time.Duration) (<-chan time.Time, func()) {
			t := time.NewTicker(d)
			return t.C, t.Stop
		}
	}
	if m.HighWaterMark > 0 {
		for _, c := range m.store.StringColumns() {
			c.setBackpressure(m.HighWaterMark, m.Kick)
		}
	}
	ctx, m.cancel = context.WithCancel(ctx)
	m.done = make(chan struct{})
	go m.run(ctx, m.done, interval, newTicker)
}

// run is the daemon loop.
func (m *MergeScheduler) run(ctx context.Context, done chan struct{}, interval time.Duration, newTicker func(time.Duration) (<-chan time.Time, func())) {
	defer close(done)
	tick, stop := newTicker(interval)
	defer stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-m.kick:
			// Backpressure engaged: merge columns at or past the high-water
			// mark even when below the regular threshold, so the throttled
			// appender is released as soon as its segment seals.
			threshold := m.DeltaRowThreshold
			if m.HighWaterMark > 0 && m.HighWaterMark < threshold {
				threshold = m.HighWaterMark
			}
			m.tickAt(threshold)
		case <-tick:
			m.Tick()
		}
	}
}

// Kick requests an immediate merge pass from a running daemon. It never
// blocks and is safe from any goroutine — including a backpressured Append
// holding its column's append mutex.
func (m *MergeScheduler) Kick() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// Close stops the daemon goroutine (waiting for it to exit), removes append
// backpressure, and drains every remaining delta via Flush. A scheduler
// that was never started just flushes. The scheduler may be started again
// afterwards.
func (m *MergeScheduler) Close() error {
	m.daemonMu.Lock()
	cancel, done := m.cancel, m.done
	m.cancel, m.done = nil, nil
	m.daemonMu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
	for _, c := range m.store.StringColumns() {
		c.setBackpressure(0, nil)
	}
	m.Flush()
	return nil
}

// Tick checks every string column and merges those whose delta (sealed +
// active segments) crossed the threshold, consulting the Chooser for the
// new format. Due columns merge in parallel on the scheduler's worker pool.
// It returns the names of the merged columns in store order — the order
// Store.StringColumns lists them, regardless of which worker ran which
// merge.
func (m *MergeScheduler) Tick() []string {
	return m.tickAt(m.DeltaRowThreshold)
}

// tickAt is Tick with an explicit threshold (the daemon's kick path lowers
// it to the high-water mark).
func (m *MergeScheduler) tickAt(threshold int) []string {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	var due []*StringColumn
	for _, c := range m.store.StringColumns() {
		if c.DeltaRows() >= threshold {
			due = append(due, c)
		}
	}
	return m.mergeColumns(due)
}

// Flush merges every column that has any delta rows, regardless of the
// threshold (shutdown / checkpoint path).
func (m *MergeScheduler) Flush() []string {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	var due []*StringColumn
	for _, c := range m.store.StringColumns() {
		if c.DeltaRows() > 0 {
			due = append(due, c)
		}
	}
	return m.mergeColumns(due)
}

// mergeColumns merges the due columns on a bounded worker pool and returns
// their names in store order — the order they were collected, which is also
// the serial path's merge order. Workers claim columns off an atomic
// cursor, so completion order varies, but the returned slice does not.
func (m *MergeScheduler) mergeColumns(due []*StringColumn) []string {
	if len(due) == 0 {
		return nil
	}
	workers := m.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(due) {
		workers = len(due)
	}

	if workers <= 1 {
		for _, c := range due {
			m.mergeColumn(c)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(due) {
						return
					}
					m.mergeColumn(due[i])
				}
			}()
		}
		wg.Wait()
	}

	names := make([]string, len(due))
	for i, c := range due {
		names[i] = c.Name()
	}
	return names
}

func (m *MergeScheduler) mergeColumn(c *StringColumn) {
	now := m.now()
	name := c.Name()
	m.mu.Lock()
	if prev, ok := m.lastMerge[name]; ok {
		m.lastInterval[name] = now.Sub(prev)
	}
	m.lastMerge[name] = now
	m.mu.Unlock()

	format := c.Format()
	if m.Chooser != nil {
		// The Chooser reads a snapshot pinning the pre-merge state: one
		// consistent (dict, codes, counters) view, unaffected by appends or
		// other merges racing this decision.
		snap := c.Snapshot()
		lifetime := m.LifetimeNs(name, float64(time.Minute))
		format = m.Chooser(snap, lifetime)
	}
	c.MergeWithOptions(format, MergeOptions{BuildParallelism: m.BuildParallelism})
}

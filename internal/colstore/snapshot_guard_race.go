//go:build race

package colstore

// snapshotGuarded reports whether the Snapshot misuse assertion is compiled
// in. Race builds pay one CAS per counter-bumping snapshot method to turn
// the contract violation "two goroutines inside one snapshot" into an
// immediate panic; without it the violation merely corrupts plain trace
// counters, which the race detector only flags when the schedule happens to
// overlap the increments.
const snapshotGuarded = true

// enter asserts the snapshot is not already inside a counter-bumping method
// on another goroutine. The CAS also creates a happens-before edge between
// clean (non-overlapping) cross-goroutine handoffs, so the detector does not
// flag the plain counter fields on schedules where the misuse never
// overlapped — the panic is the signal, not a data-race report.
func (s *Snapshot) enter() {
	if !s.inUse.CompareAndSwap(0, 1) {
		panic("colstore: Snapshot used from multiple goroutines concurrently; a snapshot is a single-goroutine query handle — take one per goroutine (O(1))")
	}
}

func (s *Snapshot) exit() { s.inUse.Store(0) }

package colstore

import (
	"fmt"
	"sync"
	"testing"

	"strdict/internal/dict"
	"strdict/internal/intcomp"
)

// recJournal records every journal event, for wiring tests.
type recJournal struct {
	mu     sync.Mutex
	events []string
	// appends per column, in arrival order.
	appends map[string][]string
	// mains counts main-part publications per column; lastMain the last
	// published row count.
	mains    map[string]int
	lastMain map[string]int
}

func newRecJournal() *recJournal {
	return &recJournal{
		appends:  make(map[string][]string),
		mains:    make(map[string]int),
		lastMain: make(map[string]int),
	}
}

func (j *recJournal) ev(s string) {
	j.mu.Lock()
	j.events = append(j.events, s)
	j.mu.Unlock()
}

func (j *recJournal) JournalAddTable(table string) { j.ev("table " + table) }
func (j *recJournal) JournalAddString(table, col string, f dict.Format) {
	j.ev(fmt.Sprintf("str %s.%s %s", table, col, f))
}
func (j *recJournal) JournalAddInt64(table, col string)   { j.ev("int " + table + "." + col) }
func (j *recJournal) JournalAddFloat64(table, col string) { j.ev("float " + table + "." + col) }

func (j *recJournal) JournalAppend(col string, value string) {
	j.mu.Lock()
	j.appends[col] = append(j.appends[col], value)
	j.mu.Unlock()
}
func (j *recJournal) JournalAppendInt64(col string, v int64) {
	j.JournalAppend(col, fmt.Sprint(v))
}
func (j *recJournal) JournalAppendFloat64(col string, v float64) {
	j.JournalAppend(col, fmt.Sprint(v))
}

func (j *recJournal) JournalMainPart(col string, d dict.Dictionary, codes intcomp.Vector, nMain int) {
	j.mu.Lock()
	j.mains[col]++
	j.lastMain[col] = nMain
	if nMain != codes.Len() {
		panic("journal: nMain != codes.Len()")
	}
	j.mu.Unlock()
}

func TestJournalDDLAndAppendWiring(t *testing.T) {
	s := NewStore()
	j := newRecJournal()
	s.SetJournal(j)

	tb := s.AddTable("t")
	sc := tb.AddString("s", dict.Array)
	ic := tb.AddInt64("i")
	fc := tb.AddFloat64("f")

	want := []string{"table t", "str t.s array", "int t.i", "float t.f"}
	if len(j.events) != len(want) {
		t.Fatalf("events = %v, want %v", j.events, want)
	}
	for i, w := range want {
		if j.events[i] != w {
			t.Fatalf("event %d = %q, want %q", i, j.events[i], w)
		}
	}

	sc.Append("b")
	sc.Append("a")
	sc.Append("b")
	ic.Append(7)
	fc.Append(1.5)

	if got := j.appends["t.s"]; len(got) != 3 || got[0] != "b" || got[1] != "a" || got[2] != "b" {
		t.Fatalf("string appends = %v", got)
	}
	if got := j.appends["t.i"]; len(got) != 1 || got[0] != "7" {
		t.Fatalf("int appends = %v", got)
	}
	if got := j.appends["t.f"]; len(got) != 1 || got[0] != "1.5" {
		t.Fatalf("float appends = %v", got)
	}
}

func TestJournalReannouncesExistingSchema(t *testing.T) {
	s := NewStore()
	tb := s.AddTable("t")
	tb.AddString("s", dict.FCBlock)
	tb.AddInt64("i")

	j := newRecJournal()
	s.SetJournal(j)
	want := []string{"table t", "str t.s fc block", "int t.i"}
	if len(j.events) != len(want) {
		t.Fatalf("events = %v, want %v", j.events, want)
	}
	for i, w := range want {
		if j.events[i] != w {
			t.Fatalf("event %d = %q, want %q", i, j.events[i], w)
		}
	}
}

func TestJournalMainPartOnMergeAndRebuild(t *testing.T) {
	s := NewStore()
	j := newRecJournal()
	s.SetJournal(j)
	c := s.AddTable("t").AddString("s", dict.Array)
	for i := 0; i < 10; i++ {
		c.Append(fmt.Sprintf("v%02d", i%4))
	}

	c.Merge(dict.Array)
	if j.mains["t.s"] != 1 || j.lastMain["t.s"] != 10 {
		t.Fatalf("after merge: mains=%d lastMain=%d", j.mains["t.s"], j.lastMain["t.s"])
	}

	c.Append("zz")
	c.MergePartial(1)
	if j.mains["t.s"] != 2 || j.lastMain["t.s"] != 11 {
		t.Fatalf("after partial: mains=%d lastMain=%d", j.mains["t.s"], j.lastMain["t.s"])
	}

	c.Rebuild(dict.FCBlock)
	if j.mains["t.s"] != 3 || j.lastMain["t.s"] != 11 {
		t.Fatalf("after rebuild: mains=%d lastMain=%d", j.mains["t.s"], j.lastMain["t.s"])
	}

	// A skipped merge (empty delta, unchanged format) publishes nothing.
	c.Merge(c.Format())
	if j.mains["t.s"] != 3 {
		t.Fatalf("no-op merge published a main part")
	}
}

func TestMainPartsAndRestoreMain(t *testing.T) {
	s := NewStore()
	c := s.AddTable("t").AddString("s", dict.Array)
	for _, v := range []string{"c", "a", "b", "a"} {
		c.Append(v)
	}
	c.Merge(dict.FCBlock)
	d, codes, n := c.MainParts()
	if n != 4 || codes.Len() != 4 || d.Len() != 3 {
		t.Fatalf("MainParts: n=%d codes=%d dict=%d", n, codes.Len(), d.Len())
	}

	s2 := NewStore()
	c2 := s2.AddTable("t").AddString("s", dict.FCBlock)
	c2.RestoreMain(d, codes)
	if c2.Len() != 4 {
		t.Fatalf("restored Len = %d", c2.Len())
	}
	for i := 0; i < 4; i++ {
		if c2.Get(i) != c.Get(i) {
			t.Fatalf("row %d: %q != %q", i, c2.Get(i), c.Get(i))
		}
	}
	// Delta appends continue on top of the restored main part.
	c2.Append("zzz")
	if c2.Len() != 5 || c2.Get(4) != "zzz" {
		t.Fatalf("append after restore: len=%d", c2.Len())
	}
}

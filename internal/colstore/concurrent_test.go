package colstore

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"strdict/internal/dict"
)

// TestConcurrentMergeStress runs N writer goroutines appending while the
// scheduler merges on its worker pool and reader goroutines hammer Get,
// Locate and ScanEq. Readers assert they never observe a torn column state
// (out-of-range panics, foreign values, rows whose value disagrees with the
// probe); a final flush-and-verify checks no row was lost or duplicated.
func TestConcurrentMergeStress(t *testing.T) {
	const (
		writers       = 4
		rowsPerWriter = 3000
		readers       = 3
	)
	s := NewStore()
	tb := s.AddTable("t")
	col := tb.AddString("c", dict.FCBlock)

	sched := NewMergeScheduler(s, 400)
	sched.Parallelism = 2
	sched.BuildParallelism = 2
	// Rotate through a few formats so merges also exercise format changes.
	formats := []dict.Format{dict.FCBlock, dict.Array, dict.FCInline, dict.ArrayBC}
	var mergeCount atomic.Int64
	sched.Chooser = func(snap *Snapshot, lifetimeNs float64) dict.Format {
		return formats[int(mergeCount.Add(1))%len(formats)]
	}

	valueOf := func(w, i int) string { return fmt.Sprintf("w%d-%06d", w, i) }

	var wg sync.WaitGroup
	var writersDone atomic.Bool

	// Writers: each appends its own deterministic sequence.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rowsPerWriter; i++ {
				col.Append(valueOf(w, i))
			}
		}(w)
	}

	// Merger: keep ticking until the writers are done.
	var mergerWG sync.WaitGroup
	mergerWG.Add(1)
	go func() {
		defer mergerWG.Done()
		for !writersDone.Load() {
			sched.Tick()
		}
	}()

	// Readers: every observation must be internally consistent.
	errCh := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errCh <- fmt.Errorf("reader %d panicked: %v", r, p)
				}
			}()
			var rows []int
			for iter := 0; iter < 400; iter++ {
				if n := col.Len(); n > 0 {
					got := col.Get((iter * 7919) % n)
					if !strings.HasPrefix(got, "w") {
						errCh <- fmt.Errorf("reader %d: torn value %q", r, got)
						return
					}
				}
				probe := valueOf(iter%writers, (iter*31)%rowsPerWriter)
				rows = col.ScanEq(probe, rows[:0])
				for _, row := range rows {
					// The column is append-only, so a row that matched the
					// scan must still hold the probe value afterwards.
					if got := col.Get(row); got != probe {
						errCh <- fmt.Errorf("reader %d: ScanEq row %d holds %q, want %q", r, row, got, probe)
						return
					}
				}
				if id, ok := col.Locate(probe); ok {
					if got := col.Extract(id); got != probe {
						errCh <- fmt.Errorf("reader %d: Locate/Extract mismatch %q vs %q", r, got, probe)
						return
					}
				}
			}
		}(r)
	}

	wg.Wait()
	writersDone.Store(true)
	mergerWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Final verification: flush and compare the multiset of all rows against
	// what the writers appended.
	sched.Flush()
	if got := col.Len(); got != writers*rowsPerWriter {
		t.Fatalf("row count %d, want %d", got, writers*rowsPerWriter)
	}
	if col.DeltaRows() != 0 {
		t.Fatalf("delta not empty after flush: %d rows", col.DeltaRows())
	}
	var want, have []string
	for w := 0; w < writers; w++ {
		for i := 0; i < rowsPerWriter; i++ {
			want = append(want, valueOf(w, i))
		}
	}
	for row := 0; row < col.Len(); row++ {
		have = append(have, col.Get(row))
	}
	sort.Strings(want)
	sort.Strings(have)
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("row multiset diverges at %d: %q vs %q", i, have[i], want[i])
		}
	}
}

// TestMergeKeepsConcurrentAppends pins the swap-time delta handling: rows
// appended while a merge is building must survive in the delta and keep
// their row positions.
func TestMergeKeepsConcurrentAppends(t *testing.T) {
	s := NewStore()
	tb := s.AddTable("t")
	col := tb.AddString("c", dict.Array)
	for i := 0; i < 100; i++ {
		col.Append(fmt.Sprintf("base-%03d", i))
	}
	col.Merge(dict.Array)

	// Simulate "appended during the build" by appending between snapshot and
	// swap: easiest deterministic approximation is appending from another
	// goroutine racing a merge many times.
	for round := 0; round < 50; round++ {
		var wg sync.WaitGroup
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				col.Append(fmt.Sprintf("r%02d-%02d", round, i))
			}
		}(round)
		col.Merge(dict.Array)
		wg.Wait()
	}
	col.Merge(dict.Array)

	want := 100 + 50*20
	if got := col.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	seen := make(map[string]int)
	for row := 0; row < col.Len(); row++ {
		seen[col.Get(row)]++
	}
	if len(seen) != want {
		t.Fatalf("distinct values %d, want %d", len(seen), want)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %q appears %d times", v, n)
		}
	}
}

// TestSnapshotReadersVsDaemon races Snapshot readers against the background
// merge daemon: writers append while the daemon merges on its own timer
// (rotating formats), and every snapshot a reader takes must be internally
// consistent — Len is fixed, every row below Len is readable, the same row
// re-reads identically for the snapshot's lifetime, and ScanEq results agree
// with Get. Runs under -race via scripts/check.sh.
func TestSnapshotReadersVsDaemon(t *testing.T) {
	const (
		writers       = 3
		rowsPerWriter = 2500
		readers       = 4
	)
	s := NewStore()
	tb := s.AddTable("t")
	col := tb.AddString("c", dict.FCBlock)

	sched := NewMergeScheduler(s, 300)
	sched.Parallelism = 2
	sched.Interval = time.Millisecond
	formats := []dict.Format{dict.FCBlock, dict.Array, dict.FCInline, dict.ArrayBC}
	var mergeCount atomic.Int64
	sched.Chooser = func(snap *Snapshot, lifetimeNs float64) dict.Format {
		return formats[int(mergeCount.Add(1))%len(formats)]
	}
	sched.Start(context.Background())

	valueOf := func(w, i int) string { return fmt.Sprintf("w%d-%06d", w, i) }

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rowsPerWriter; i++ {
				col.Append(valueOf(w, i))
			}
		}(w)
	}

	errCh := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errCh <- fmt.Errorf("reader %d panicked: %v", r, p)
				}
			}()
			prevLen := 0
			var rows []int
			for iter := 0; iter < 300; iter++ {
				snap := col.Snapshot()
				n := snap.Len()
				if n < prevLen {
					errCh <- fmt.Errorf("reader %d: snapshot Len went backwards: %d -> %d", r, prevLen, n)
					return
				}
				prevLen = n
				if n != snap.Len() {
					errCh <- fmt.Errorf("reader %d: Len unstable within one snapshot", r)
					return
				}
				if n == 0 {
					continue
				}
				// A sample of rows must read consistently twice.
				for k := 0; k < 5; k++ {
					row := (iter*7919 + k*104729) % n
					first := snap.Get(row)
					if !strings.HasPrefix(first, "w") {
						errCh <- fmt.Errorf("reader %d: torn value %q", r, first)
						return
					}
					if again := snap.Get(row); again != first {
						errCh <- fmt.Errorf("reader %d: row %d changed within snapshot: %q -> %q", r, row, first, again)
						return
					}
				}
				// ScanEq and Get must agree on the same snapshot.
				probe := valueOf(iter%writers, (iter*31)%rowsPerWriter)
				rows = snap.ScanEq(probe, rows[:0])
				for _, row := range rows {
					if got := snap.Get(row); got != probe {
						errCh <- fmt.Errorf("reader %d: ScanEq row %d holds %q, want %q", r, row, got, probe)
						return
					}
				}
			}
		}(r)
	}

	wg.Wait()
	if err := sched.Close(); err != nil {
		t.Fatal(err)
	}
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Close drained everything; the final state holds every appended row.
	if got := col.Len(); got != writers*rowsPerWriter {
		t.Fatalf("row count %d, want %d", got, writers*rowsPerWriter)
	}
	if col.DeltaRows() != 0 {
		t.Fatalf("delta not empty after Close: %d rows", col.DeltaRows())
	}
	var want, have []string
	for w := 0; w < writers; w++ {
		for i := 0; i < rowsPerWriter; i++ {
			want = append(want, valueOf(w, i))
		}
	}
	for row := 0; row < col.Len(); row++ {
		have = append(have, col.Get(row))
	}
	sort.Strings(want)
	sort.Strings(have)
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("row multiset diverges at %d: %q vs %q", i, have[i], want[i])
		}
	}
}

// TestParallelMergeIdenticalDictionaries asserts the acceptance invariant:
// merging a store serially or on the worker pool (including parallel
// dictionary builds) yields identical dictionary bytes per column.
func TestParallelMergeIdenticalDictionaries(t *testing.T) {
	build := func() *Store {
		s := NewStore()
		tb := s.AddTable("t")
		for k := 0; k < 4; k++ {
			c := tb.AddString(fmt.Sprintf("c%d", k), dict.FCInline)
			for i := 0; i < 2500; i++ {
				c.Append(fmt.Sprintf("col%d/val-%06d-%04x", k, i%1900, (i*37+k)%1900))
			}
		}
		return s
	}
	chooser := func(snap *Snapshot, _ float64) dict.Format {
		// Pick per-column formats covering array, fc and df layouts.
		switch {
		case strings.HasSuffix(snap.Name(), "0"):
			return dict.ArrayHU
		case strings.HasSuffix(snap.Name(), "1"):
			return dict.FCBlockDF
		case strings.HasSuffix(snap.Name(), "2"):
			return dict.FCBlockBC
		default:
			return dict.FCBlock
		}
	}

	serialStore := build()
	serialSched := NewMergeScheduler(serialStore, 1)
	serialSched.Parallelism = 1
	serialSched.Chooser = chooser
	serialSched.Flush()

	parStore := build()
	parSched := NewMergeScheduler(parStore, 1)
	parSched.Parallelism = 4
	parSched.BuildParallelism = 4
	parSched.Chooser = chooser
	parSched.Flush()

	sc := serialStore.StringColumns()
	pc := parStore.StringColumns()
	for i := range sc {
		if sc[i].Format() != pc[i].Format() {
			t.Fatalf("%s: format %s vs %s", sc[i].Name(), sc[i].Format(), pc[i].Format())
		}
		if sb, pb := sc[i].DictBytes(), pc[i].DictBytes(); sb != pb {
			t.Fatalf("%s: dict bytes %d vs %d", sc[i].Name(), sb, pb)
		}
		if sb, pb := sc[i].VectorBytes(), pc[i].VectorBytes(); sb != pb {
			t.Fatalf("%s: vector bytes %d vs %d", sc[i].Name(), sb, pb)
		}
	}
}

package colstore

import (
	"fmt"
	"testing"
	"time"

	"strdict/internal/dict"
)

func TestMergeSchedulerThreshold(t *testing.T) {
	s := NewStore()
	tb := s.AddTable("t")
	hot := tb.AddString("hot", dict.Array)
	cold := tb.AddString("cold", dict.Array)

	m := NewMergeScheduler(s, 100)
	for i := 0; i < 150; i++ {
		hot.Append(fmt.Sprintf("h%04d", i))
	}
	cold.Append("only one")

	merged := m.Tick()
	if len(merged) != 1 || merged[0] != "t.hot" {
		t.Fatalf("merged %v, want [t.hot]", merged)
	}
	if hot.DeltaRows() != 0 {
		t.Fatalf("hot delta %d after merge", hot.DeltaRows())
	}
	if cold.DeltaRows() != 1 {
		t.Fatalf("cold delta %d, want 1 (below threshold)", cold.DeltaRows())
	}
	// Flush takes the rest.
	if merged := m.Flush(); len(merged) != 1 || merged[0] != "t.cold" {
		t.Fatalf("Flush merged %v", merged)
	}
	if got := cold.Get(0); got != "only one" {
		t.Fatalf("cold data lost: %q", got)
	}
}

// TestMergeOrderStoreOrderParallel pins the documented contract that Tick
// (and Flush) report merged column names in store order even when the
// worker pool merges them in arbitrary completion order.
func TestMergeOrderStoreOrderParallel(t *testing.T) {
	s := NewStore()
	tb := s.AddTable("t")
	var want []string
	for k := 0; k < 8; k++ {
		c := tb.AddString(fmt.Sprintf("c%d", k), dict.Array)
		for i := 0; i < 10+k*7; i++ { // uneven sizes: merges finish out of order
			c.Append(fmt.Sprintf("v%d-%04d", k, i))
		}
		want = append(want, c.Name())
	}
	m := NewMergeScheduler(s, 1)
	m.Parallelism = 4
	for round := 0; round < 5; round++ {
		got := m.Tick()
		if len(got) != len(want) {
			t.Fatalf("round %d: merged %v, want %v", round, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: merge order %v, want store order %v", round, got, want)
			}
		}
		for k := 0; k < 8; k++ { // make every column due again
			tb.Str(fmt.Sprintf("c%d", k)).Append(fmt.Sprintf("r%d-%d", round, k))
		}
	}
}

func TestMergeSchedulerLifetimeTracking(t *testing.T) {
	s := NewStore()
	tb := s.AddTable("t")
	c := tb.AddString("c", dict.Array)
	m := NewMergeScheduler(s, 1)

	// Injected clock: merges 5 seconds apart.
	clock := time.Unix(1000, 0)
	m.now = func() time.Time { return clock }

	c.Append("a")
	m.Tick()
	if lt := m.LifetimeNs("t.c", 42); lt != 42 {
		t.Fatalf("first merge should use the fallback, got %g", lt)
	}
	clock = clock.Add(5 * time.Second)
	c.Append("b")
	m.Tick()
	if lt := m.LifetimeNs("t.c", 42); lt != float64(5*time.Second) {
		t.Fatalf("lifetime %g, want 5s", lt)
	}
}

// TestMergeSkipsStaleDispatch pins the stale-dispatch fix: a column
// collected as due but drained before a worker claims it (a racing explicit
// Merge, or a concurrent scheduler) is skipped — not merged, not reported in
// the returned names, and no interval bookkeeping is recorded for it.
func TestMergeSkipsStaleDispatch(t *testing.T) {
	s := NewStore()
	tb := s.AddTable("t")
	stale := tb.AddString("stale", dict.Array)
	live := tb.AddString("live", dict.Array)
	m := NewMergeScheduler(s, 1)

	stale.Append("x")
	live.Append("y")
	stale.Merge(stale.Format()) // racing explicit merge drains the delta

	// Dispatch both directly, as Tick would have after collecting them.
	names := m.mergeColumns([]*StringColumn{stale, live}, modeTimer)
	if len(names) != 1 || names[0] != "t.live" {
		t.Fatalf("merged %v, want [t.live]", names)
	}
	if st := m.ColumnMergeStats("t.stale"); st.Full != 0 || st.Partial != 0 {
		t.Fatalf("stale dispatch recorded a merge: %+v", st)
	}
	if st := m.ColumnMergeStats("t.live"); st.Full != 1 {
		t.Fatalf("live column not recorded: %+v", st)
	}
}

// TestLifetimeUnaffectedByPartialAndNoOp pins the lifetime(d) bookkeeping
// contract: LifetimeNs measures the interval between *full* merges that
// actually folded rows. Partial folds and no-op passes must leave it
// untouched, while still being visible through ColumnMergeStats.
func TestLifetimeUnaffectedByPartialAndNoOp(t *testing.T) {
	s := NewStore()
	c := s.AddTable("t").AddString("c", dict.Array)
	m := NewMergeScheduler(s, 4)
	m.PartialMerges = true
	clock := time.Unix(1000, 0)
	m.now = func() time.Time { return clock }

	appendN := func(n int) {
		for i := 0; i < n; i++ {
			c.Append(fmt.Sprintf("v%06d", c.Len()))
		}
	}

	// Two timer merges 5s apart establish lifetime = 5s. The injected append
	// rate (4 rows / 5s) is far below the hot threshold, so both are full.
	appendN(4)
	m.Tick()
	clock = clock.Add(5 * time.Second)
	appendN(4)
	m.Tick()
	if lt := m.LifetimeNs("t.c", 42); lt != float64(5*time.Second) {
		t.Fatalf("lifetime %g, want 5s", lt)
	}

	// A kick-mode pass takes the partial path; it must count as a partial
	// fold and leave the full-merge interval alone.
	clock = clock.Add(3 * time.Second)
	appendN(8)
	m.tickAt(4, modeKick)
	st := m.ColumnMergeStats("t.c")
	if st.Partial == 0 {
		t.Fatalf("kick pass did not fold partially: %+v", st)
	}
	if st.Full != 2 {
		t.Fatalf("partial fold miscounted as full: %+v", st)
	}
	if lt := m.LifetimeNs("t.c", 42); lt != float64(5*time.Second) {
		t.Fatalf("partial fold skewed lifetime to %g", lt)
	}

	// A no-op pass over a drained column records nothing at all.
	clock = clock.Add(7 * time.Second)
	m.mergeColumns([]*StringColumn{c}, modeTimer)
	if got := m.ColumnMergeStats("t.c"); got.Full != st.Full || got.Partial != st.Partial {
		t.Fatalf("no-op pass changed counters: %+v -> %+v", st, got)
	}
	if lt := m.LifetimeNs("t.c", 42); lt != float64(5*time.Second) {
		t.Fatalf("no-op pass skewed lifetime to %g", lt)
	}
}

func TestMergeSchedulerChooser(t *testing.T) {
	s := NewStore()
	tb := s.AddTable("t")
	c := tb.AddString("c", dict.FCInline)
	var sawLifetime float64
	var sawRows int
	m := NewMergeScheduler(s, 1)
	m.Chooser = func(snap *Snapshot, lifetimeNs float64) dict.Format {
		sawLifetime = lifetimeNs
		sawRows = snap.Len()
		return dict.ArrayFixed
	}
	for i := 0; i < 10; i++ {
		c.Append(fmt.Sprintf("%03d", i))
	}
	m.Tick()
	if c.Format() != dict.ArrayFixed {
		t.Fatalf("chooser ignored: format %s", c.Format())
	}
	if sawLifetime <= 0 {
		t.Fatal("chooser saw no lifetime")
	}
	if sawRows != 10 {
		t.Fatalf("chooser snapshot saw %d rows, want 10", sawRows)
	}
	for i, want := 0, ""; i < 10; i++ {
		want = fmt.Sprintf("%03d", i)
		if got := c.Get(i); got != want {
			t.Fatalf("Get(%d) = %q, want %q", i, got, want)
		}
	}
}

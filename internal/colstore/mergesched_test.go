package colstore

import (
	"fmt"
	"testing"
	"time"

	"strdict/internal/dict"
)

func TestMergeSchedulerThreshold(t *testing.T) {
	s := NewStore()
	tb := s.AddTable("t")
	hot := tb.AddString("hot", dict.Array)
	cold := tb.AddString("cold", dict.Array)

	m := NewMergeScheduler(s, 100)
	for i := 0; i < 150; i++ {
		hot.Append(fmt.Sprintf("h%04d", i))
	}
	cold.Append("only one")

	merged := m.Tick()
	if len(merged) != 1 || merged[0] != "t.hot" {
		t.Fatalf("merged %v, want [t.hot]", merged)
	}
	if hot.DeltaRows() != 0 {
		t.Fatalf("hot delta %d after merge", hot.DeltaRows())
	}
	if cold.DeltaRows() != 1 {
		t.Fatalf("cold delta %d, want 1 (below threshold)", cold.DeltaRows())
	}
	// Flush takes the rest.
	if merged := m.Flush(); len(merged) != 1 || merged[0] != "t.cold" {
		t.Fatalf("Flush merged %v", merged)
	}
	if got := cold.Get(0); got != "only one" {
		t.Fatalf("cold data lost: %q", got)
	}
}

func TestMergeSchedulerLifetimeTracking(t *testing.T) {
	s := NewStore()
	tb := s.AddTable("t")
	c := tb.AddString("c", dict.Array)
	m := NewMergeScheduler(s, 1)

	// Injected clock: merges 5 seconds apart.
	clock := time.Unix(1000, 0)
	m.now = func() time.Time { return clock }

	c.Append("a")
	m.Tick()
	if lt := m.LifetimeNs("t.c", 42); lt != 42 {
		t.Fatalf("first merge should use the fallback, got %g", lt)
	}
	clock = clock.Add(5 * time.Second)
	c.Append("b")
	m.Tick()
	if lt := m.LifetimeNs("t.c", 42); lt != float64(5*time.Second) {
		t.Fatalf("lifetime %g, want 5s", lt)
	}
}

func TestMergeSchedulerChooser(t *testing.T) {
	s := NewStore()
	tb := s.AddTable("t")
	c := tb.AddString("c", dict.FCInline)
	var sawLifetime float64
	m := NewMergeScheduler(s, 1)
	m.Chooser = func(col *StringColumn, lifetimeNs float64) dict.Format {
		sawLifetime = lifetimeNs
		return dict.ArrayFixed
	}
	for i := 0; i < 10; i++ {
		c.Append(fmt.Sprintf("%03d", i))
	}
	m.Tick()
	if c.Format() != dict.ArrayFixed {
		t.Fatalf("chooser ignored: format %s", c.Format())
	}
	if sawLifetime <= 0 {
		t.Fatal("chooser saw no lifetime")
	}
	for i, want := 0, ""; i < 10; i++ {
		want = fmt.Sprintf("%03d", i)
		if got := c.Get(i); got != want {
			t.Fatalf("Get(%d) = %q, want %q", i, got, want)
		}
	}
}

package colstore

import (
	"fmt"
	"testing"
	"time"

	"strdict/internal/dict"
)

func TestMergeSchedulerThreshold(t *testing.T) {
	s := NewStore()
	tb := s.AddTable("t")
	hot := tb.AddString("hot", dict.Array)
	cold := tb.AddString("cold", dict.Array)

	m := NewMergeScheduler(s, 100)
	for i := 0; i < 150; i++ {
		hot.Append(fmt.Sprintf("h%04d", i))
	}
	cold.Append("only one")

	merged := m.Tick()
	if len(merged) != 1 || merged[0] != "t.hot" {
		t.Fatalf("merged %v, want [t.hot]", merged)
	}
	if hot.DeltaRows() != 0 {
		t.Fatalf("hot delta %d after merge", hot.DeltaRows())
	}
	if cold.DeltaRows() != 1 {
		t.Fatalf("cold delta %d, want 1 (below threshold)", cold.DeltaRows())
	}
	// Flush takes the rest.
	if merged := m.Flush(); len(merged) != 1 || merged[0] != "t.cold" {
		t.Fatalf("Flush merged %v", merged)
	}
	if got := cold.Get(0); got != "only one" {
		t.Fatalf("cold data lost: %q", got)
	}
}

// TestMergeOrderStoreOrderParallel pins the documented contract that Tick
// (and Flush) report merged column names in store order even when the
// worker pool merges them in arbitrary completion order.
func TestMergeOrderStoreOrderParallel(t *testing.T) {
	s := NewStore()
	tb := s.AddTable("t")
	var want []string
	for k := 0; k < 8; k++ {
		c := tb.AddString(fmt.Sprintf("c%d", k), dict.Array)
		for i := 0; i < 10+k*7; i++ { // uneven sizes: merges finish out of order
			c.Append(fmt.Sprintf("v%d-%04d", k, i))
		}
		want = append(want, c.Name())
	}
	m := NewMergeScheduler(s, 1)
	m.Parallelism = 4
	for round := 0; round < 5; round++ {
		got := m.Tick()
		if len(got) != len(want) {
			t.Fatalf("round %d: merged %v, want %v", round, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: merge order %v, want store order %v", round, got, want)
			}
		}
		for k := 0; k < 8; k++ { // make every column due again
			tb.Str(fmt.Sprintf("c%d", k)).Append(fmt.Sprintf("r%d-%d", round, k))
		}
	}
}

func TestMergeSchedulerLifetimeTracking(t *testing.T) {
	s := NewStore()
	tb := s.AddTable("t")
	c := tb.AddString("c", dict.Array)
	m := NewMergeScheduler(s, 1)

	// Injected clock: merges 5 seconds apart.
	clock := time.Unix(1000, 0)
	m.now = func() time.Time { return clock }

	c.Append("a")
	m.Tick()
	if lt := m.LifetimeNs("t.c", 42); lt != 42 {
		t.Fatalf("first merge should use the fallback, got %g", lt)
	}
	clock = clock.Add(5 * time.Second)
	c.Append("b")
	m.Tick()
	if lt := m.LifetimeNs("t.c", 42); lt != float64(5*time.Second) {
		t.Fatalf("lifetime %g, want 5s", lt)
	}
}

func TestMergeSchedulerChooser(t *testing.T) {
	s := NewStore()
	tb := s.AddTable("t")
	c := tb.AddString("c", dict.FCInline)
	var sawLifetime float64
	var sawRows int
	m := NewMergeScheduler(s, 1)
	m.Chooser = func(snap *Snapshot, lifetimeNs float64) dict.Format {
		sawLifetime = lifetimeNs
		sawRows = snap.Len()
		return dict.ArrayFixed
	}
	for i := 0; i < 10; i++ {
		c.Append(fmt.Sprintf("%03d", i))
	}
	m.Tick()
	if c.Format() != dict.ArrayFixed {
		t.Fatalf("chooser ignored: format %s", c.Format())
	}
	if sawLifetime <= 0 {
		t.Fatal("chooser saw no lifetime")
	}
	if sawRows != 10 {
		t.Fatalf("chooser snapshot saw %d rows, want 10", sawRows)
	}
	for i, want := 0, ""; i < 10; i++ {
		want = fmt.Sprintf("%03d", i)
		if got := c.Get(i); got != want {
			t.Fatalf("Get(%d) = %q, want %q", i, got, want)
		}
	}
}

package colstore

import (
	"fmt"
	"testing"

	"strdict/internal/dict"
)

// TestSnapshotPinsStateAcrossMerge: a snapshot must keep serving the exact
// state it pinned — Len, values, format, value IDs — while the live column
// moves on through appends, merges and rebuilds.
func TestSnapshotPinsStateAcrossMerge(t *testing.T) {
	c := NewStringColumn("t.c", dict.Array)
	for i := 0; i < 100; i++ {
		c.Append(fmt.Sprintf("v%03d", i%40))
	}
	c.Merge(dict.Array)
	c.Append("unmerged-1") // one active delta row in the snapshot
	snap := c.Snapshot()

	wantLen := snap.Len()
	wantFormat := snap.Format()
	wantVals := make([]string, wantLen)
	for i := range wantVals {
		wantVals[i] = snap.Get(i)
	}
	id40, ok := snap.Locate("v039")
	if !ok {
		t.Fatal("Locate failed on snapshot")
	}

	// The column moves on: more rows, a format-changing merge, a rebuild.
	for i := 0; i < 50; i++ {
		c.Append(fmt.Sprintf("new%03d", i))
	}
	c.Merge(dict.FCBlock)
	c.Rebuild(dict.FCInline)

	if c.Len() != wantLen+50 || c.Format() != dict.FCInline {
		t.Fatalf("live column did not move on: len %d, format %s", c.Len(), c.Format())
	}
	if snap.Len() != wantLen {
		t.Fatalf("snapshot Len moved: %d -> %d", wantLen, snap.Len())
	}
	if snap.Format() != wantFormat {
		t.Fatalf("snapshot format moved: %s -> %s", wantFormat, snap.Format())
	}
	for i, want := range wantVals {
		if got := snap.Get(i); got != want {
			t.Fatalf("snapshot Get(%d) = %q, want %q", i, got, want)
		}
	}
	if id, _ := snap.Locate("v039"); id != id40 {
		t.Fatalf("snapshot value ID moved: %d -> %d", id40, id)
	}
	// Code/Extract round-trip within the snapshot stays coherent.
	if code, ok := snap.Code(39); ok {
		if got := snap.Extract(code); got != wantVals[39] {
			t.Fatalf("snapshot Code/Extract mismatch: %q vs %q", got, wantVals[39])
		}
	} else {
		t.Fatal("Code(39) not in main part")
	}
}

// TestSnapshotCoversAllThreeParts builds a column with main rows, a sealed
// delta segment, and active rows, then checks Get/ScanEq/Len agree across
// the three storage classes on both the live column and a snapshot.
func TestSnapshotCoversAllThreeParts(t *testing.T) {
	c := NewStringColumn("t.c", dict.Array)
	for _, v := range []string{"m1", "m2", "m1"} {
		c.Append(v)
	}
	c.Merge(dict.Array) // 3 main rows
	for _, v := range []string{"s1", "m1", "s2"} {
		c.Append(v)
	}
	c.sealActive() // 3 sealed rows
	for _, v := range []string{"a1", "m1", "s1"} {
		c.Append(v) // 3 active rows
	}

	want := []string{"m1", "m2", "m1", "s1", "m1", "s2", "a1", "m1", "s1"}
	if c.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(want))
	}
	if c.DeltaRows() != 6 {
		t.Fatalf("DeltaRows = %d, want 6 (3 sealed + 3 active)", c.DeltaRows())
	}
	for i, w := range want {
		if got := c.Get(i); got != w {
			t.Fatalf("live Get(%d) = %q, want %q", i, got, w)
		}
	}

	snap := c.Snapshot()
	if snap.Len() != len(want) || snap.MainRows() != 3 || snap.DeltaRows() != 6 {
		t.Fatalf("snapshot shape: len %d main %d delta %d", snap.Len(), snap.MainRows(), snap.DeltaRows())
	}
	for i, w := range want {
		if got := snap.Get(i); got != w {
			t.Fatalf("snapshot Get(%d) = %q, want %q", i, got, w)
		}
	}
	// ScanEq must find m1 in main (rows 0, 2), sealed (4) and active (7).
	for _, h := range []struct {
		probe string
		rows  []int
	}{
		{"m1", []int{0, 2, 4, 7}},
		{"s1", []int{3, 8}},
		{"a1", []int{6}},
		{"absent", nil},
	} {
		got := snap.ScanEq(h.probe, nil)
		if len(got) != len(h.rows) {
			t.Fatalf("ScanEq(%q) = %v, want %v", h.probe, got, h.rows)
		}
		for i := range h.rows {
			if got[i] != h.rows[i] {
				t.Fatalf("ScanEq(%q) = %v, want %v", h.probe, got, h.rows)
			}
		}
		live := c.ScanEq(h.probe, nil)
		if fmt.Sprint(live) != fmt.Sprint(got) {
			t.Fatalf("live ScanEq(%q) = %v, snapshot %v", h.probe, live, got)
		}
	}

	// Merging folds sealed + active into main; data unchanged.
	c.Merge(dict.FCBlock)
	if c.DeltaRows() != 0 {
		t.Fatalf("DeltaRows after merge = %d", c.DeltaRows())
	}
	for i, w := range want {
		if got := c.Get(i); got != w {
			t.Fatalf("post-merge Get(%d) = %q, want %q", i, got, w)
		}
	}
	// The old snapshot still serves the pre-merge view.
	for i, w := range want {
		if got := snap.Get(i); got != w {
			t.Fatalf("stale snapshot Get(%d) = %q, want %q", i, got, w)
		}
	}
}

// TestMergeMultipleSealedSegments: a merge must fold every sealed segment,
// including duplicate values appearing in several segments, into one
// dictionary with correct codes.
func TestMergeMultipleSealedSegments(t *testing.T) {
	c := NewStringColumn("t.c", dict.Array)
	var want []string
	for seg := 0; seg < 4; seg++ {
		for i := 0; i < 10; i++ {
			v := fmt.Sprintf("dup-%02d", i) // same values in every segment
			c.Append(v)
			want = append(want, v)
		}
		c.sealActive()
	}
	c.Merge(dict.FCInline)
	if c.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(want))
	}
	if c.DictLen() != 10 {
		t.Fatalf("DictLen = %d, want 10 (cross-segment duplicates collapsed)", c.DictLen())
	}
	for i, w := range want {
		if got := c.Get(i); got != w {
			t.Fatalf("Get(%d) = %q, want %q", i, got, w)
		}
	}
}

// TestSnapshotFastPathNoTail: a fully merged column's snapshot takes the
// lock-free fast path and must still be complete.
func TestSnapshotFastPathNoTail(t *testing.T) {
	c := NewStringColumn("t.c", dict.FCBlock)
	for i := 0; i < 64; i++ {
		c.Append(fmt.Sprintf("x%04d", i))
	}
	c.Merge(dict.FCBlock)
	snap := c.Snapshot()
	if snap.tailRows != nil || snap.tailVals != nil {
		t.Fatal("fast-path snapshot captured a tail")
	}
	if snap.Len() != 64 || snap.DeltaRows() != 0 {
		t.Fatalf("snapshot shape: len %d delta %d", snap.Len(), snap.DeltaRows())
	}
	if got := snap.Get(63); got != "x0063" {
		t.Fatalf("Get(63) = %q", got)
	}
}

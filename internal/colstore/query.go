package colstore

// Query-plan building blocks. Column-store plans work on value IDs (codes)
// wherever possible: predicates against constants cost one locate, joins
// translate the smaller dictionary into the other side's code space, and
// only final result materialization extracts strings. These helpers produce
// exactly the dictionary access profile the compression manager's time
// model feeds on.

// TranslateCodes maps every value ID of src's dictionary to the matching
// value ID in dst's dictionary, or -1 when dst does not contain the value.
// It costs src.DictLen() extracts plus as many locates on dst — the standard
// dictionary-translation join of column stores.
func TranslateCodes(src, dst *StringColumn) []int64 {
	out := make([]int64, src.DictLen())
	var buf []byte
	for id := range out {
		buf = src.AppendExtract(buf[:0], uint32(id))
		if did, found := dst.Locate(string(buf)); found {
			out[id] = int64(did)
		} else {
			out[id] = -1
		}
	}
	return out
}

// RowIndexByCode builds an index from value ID to the (single) row holding
// it. Intended for key columns, where every value occurs exactly once; for
// repeated values the last row wins. It reads only the code vector, no
// dictionary operations.
func (c *StringColumn) RowIndexByCode() []int32 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	idx := make([]int32, c.dict.Len())
	for i := range idx {
		idx[i] = -1
	}
	for row := 0; row < c.nMain; row++ {
		idx[c.codes.Get(row)] = int32(row)
	}
	return idx
}

// RowsByCode groups the main-part rows by value ID. It reads only the code
// vector.
func (c *StringColumn) RowsByCode() [][]int32 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([][]int32, c.dict.Len())
	for row := 0; row < c.nMain; row++ {
		code := c.codes.Get(row)
		out[code] = append(out[code], int32(row))
	}
	return out
}

// CodeSet returns the set of value IDs whose strings satisfy pred. pred is
// evaluated once per distinct value (DictLen extracts), not once per row —
// the dictionary's second superpower after compression.
func (c *StringColumn) CodeSet(pred func(string) bool) map[uint32]bool {
	out := make(map[uint32]bool)
	var buf []byte
	for id := 0; id < c.DictLen(); id++ {
		buf = c.AppendExtract(buf[:0], uint32(id))
		if pred(string(buf)) {
			out[uint32(id)] = true
		}
	}
	return out
}

package colstore

// Query-plan building blocks. Column-store plans work on value IDs (codes)
// wherever possible: predicates against constants cost one locate, joins
// translate the smaller dictionary into the other side's code space, and
// only final result materialization extracts strings. These helpers produce
// exactly the dictionary access profile the compression manager's time
// model feeds on. Each helper pins one column version (or an explicit
// Snapshot) for its whole run, so a concurrent merge can never tear the
// ID space mid-plan.

// queryChunk is the batch size of the bulk code-decode loops below: large
// enough to amortize the kernel dispatch, small enough for a stack buffer.
const queryChunk = 256

// TranslateCodes maps every value ID of src's dictionary to the matching
// value ID in dst's dictionary, or -1 when dst does not contain the value.
// It costs src.DictLen() extracts plus as many locates on dst — the standard
// dictionary-translation join of column stores. Both dictionaries are pinned
// via snapshots, so the mapping is resolved against one consistent pair even
// while merges run. The walk stays in byte-slice space end to end
// (ForEachValue feeding LocateBytes), so no per-entry string is allocated.
func TranslateCodes(src, dst *StringColumn) []int64 {
	ss, ds := src.Snapshot(), dst.Snapshot()
	defer ss.Release()
	defer ds.Release()
	out := make([]int64, ss.DictLen())
	ss.ForEachValue(func(id uint32, value []byte) bool {
		if did, found := ds.LocateBytes(value); found {
			out[id] = int64(did)
		} else {
			out[id] = -1
		}
		return true
	})
	return out
}

// RowIndexByCode builds an index from value ID to the (single) row holding
// it. Intended for key columns, where every value occurs exactly once; for
// repeated values the last row wins. It batch-decodes the code vector of
// one pinned version — no dictionary operations, no locks.
func (c *StringColumn) RowIndexByCode() []int32 {
	v := c.version.Load()
	idx := make([]int32, v.dict.Len())
	for i := range idx {
		idx[i] = -1
	}
	var buf [queryChunk]uint64
	for row := 0; row < v.nMain; {
		k := v.nMain - row
		if k > queryChunk {
			k = queryChunk
		}
		for j, code := range v.codes.AppendRange(buf[:0], row, k) {
			idx[code] = int32(row + j)
		}
		row += k
	}
	return idx
}

// RowsByCode groups the main-part rows by value ID. It batch-decodes the
// code vector of one pinned version.
func (c *StringColumn) RowsByCode() [][]int32 {
	v := c.version.Load()
	out := make([][]int32, v.dict.Len())
	var buf [queryChunk]uint64
	for row := 0; row < v.nMain; {
		k := v.nMain - row
		if k > queryChunk {
			k = queryChunk
		}
		for j, code := range v.codes.AppendRange(buf[:0], row, k) {
			out[code] = append(out[code], int32(row+j))
		}
		row += k
	}
	return out
}

// CodeSet returns the set of value IDs whose strings satisfy pred. pred is
// evaluated once per distinct value (DictLen extracts), not once per row —
// the dictionary's second superpower after compression. The dictionary is
// pinned for the whole evaluation.
func (c *StringColumn) CodeSet(pred func(string) bool) map[uint32]bool {
	s := c.Snapshot()
	defer s.Release()
	out := make(map[uint32]bool)
	var buf []byte
	for id := 0; id < s.DictLen(); id++ {
		buf = s.AppendExtract(buf[:0], uint32(id))
		if pred(string(buf)) {
			out[uint32(id)] = true
		}
	}
	return out
}

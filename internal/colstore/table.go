package colstore

import (
	"fmt"

	"strdict/internal/dict"
)

// Table is a set of equally-long columns.
type Table struct {
	Name string

	strCols   map[string]*StringColumn
	intCols   map[string]*Int64Column
	floatCols map[string]*Float64Column
	order     []string // column names in definition order

	// journal, when non-nil, is inherited by columns defined on this table
	// and receives their DDL events. Set by Store.AddTable / SetJournal.
	journal Journal
}

// NewTable returns an empty table.
func NewTable(name string) *Table {
	return &Table{
		Name:      name,
		strCols:   make(map[string]*StringColumn),
		intCols:   make(map[string]*Int64Column),
		floatCols: make(map[string]*Float64Column),
	}
}

// AddString defines a string column with an initial dictionary format.
func (t *Table) AddString(name string, format dict.Format) *StringColumn {
	c := NewStringColumn(t.Name+"."+name, format)
	c.journal = t.journal
	t.strCols[name] = c
	t.order = append(t.order, name)
	if t.journal != nil {
		t.journal.JournalAddString(t.Name, name, format)
	}
	return c
}

// AddInt64 defines a numeric column.
func (t *Table) AddInt64(name string) *Int64Column {
	c := NewInt64Column(t.Name + "." + name)
	c.journal = t.journal
	t.intCols[name] = c
	t.order = append(t.order, name)
	if t.journal != nil {
		t.journal.JournalAddInt64(t.Name, name)
	}
	return c
}

// AddFloat64 defines a float column.
func (t *Table) AddFloat64(name string) *Float64Column {
	c := NewFloat64Column(t.Name + "." + name)
	c.journal = t.journal
	t.floatCols[name] = c
	t.order = append(t.order, name)
	if t.journal != nil {
		t.journal.JournalAddFloat64(t.Name, name)
	}
	return c
}

// Str returns a string column; it panics on unknown names, which are
// programming errors in hand-written query plans.
func (t *Table) Str(name string) *StringColumn {
	c, ok := t.strCols[name]
	if !ok {
		panic(fmt.Sprintf("colstore: no string column %s.%s", t.Name, name))
	}
	return c
}

// Int returns a numeric column.
func (t *Table) Int(name string) *Int64Column {
	c, ok := t.intCols[name]
	if !ok {
		panic(fmt.Sprintf("colstore: no int column %s.%s", t.Name, name))
	}
	return c
}

// Float returns a float column.
func (t *Table) Float(name string) *Float64Column {
	c, ok := t.floatCols[name]
	if !ok {
		panic(fmt.Sprintf("colstore: no float column %s.%s", t.Name, name))
	}
	return c
}

// StringColumns returns the table's string columns in definition order.
func (t *Table) StringColumns() []*StringColumn {
	var out []*StringColumn
	for _, name := range t.order {
		if c, ok := t.strCols[name]; ok {
			out = append(out, c)
		}
	}
	return out
}

// Int64Columns returns the table's numeric columns in definition order.
func (t *Table) Int64Columns() []*Int64Column {
	var out []*Int64Column
	for _, name := range t.order {
		if c, ok := t.intCols[name]; ok {
			out = append(out, c)
		}
	}
	return out
}

// Float64Columns returns the table's float columns in definition order.
func (t *Table) Float64Columns() []*Float64Column {
	var out []*Float64Column
	for _, name := range t.order {
		if c, ok := t.floatCols[name]; ok {
			out = append(out, c)
		}
	}
	return out
}

// Rows returns the number of rows, taken from the first column.
func (t *Table) Rows() int {
	for _, name := range t.order {
		if c, ok := t.strCols[name]; ok {
			return c.Len()
		}
		if c, ok := t.intCols[name]; ok {
			return c.Len()
		}
		if c, ok := t.floatCols[name]; ok {
			return c.Len()
		}
	}
	return 0
}

// MergeAll merges every string column's delta into its main part, keeping
// each column's current format.
func (t *Table) MergeAll() {
	for _, c := range t.StringColumns() {
		c.Merge(c.Format())
	}
}

// Bytes returns the table's total memory footprint.
func (t *Table) Bytes() uint64 {
	var b uint64
	for _, c := range t.strCols {
		b += c.Bytes()
	}
	for _, c := range t.intCols {
		b += c.Bytes()
	}
	for _, c := range t.floatCols {
		b += c.Bytes()
	}
	return b
}

// Store is a set of tables — the whole database.
type Store struct {
	Tables map[string]*Table
	names  []string

	// journal, when non-nil, is inherited by tables created on this store.
	// Set via SetJournal (see journal.go).
	journal Journal
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{Tables: make(map[string]*Table)}
}

// AddTable creates and registers a table.
func (s *Store) AddTable(name string) *Table {
	t := NewTable(name)
	t.journal = s.journal
	s.Tables[name] = t
	s.names = append(s.names, name)
	if s.journal != nil {
		s.journal.JournalAddTable(name)
	}
	return t
}

// Table returns a table by name, panicking on unknown names.
func (s *Store) Table(name string) *Table {
	t, ok := s.Tables[name]
	if !ok {
		panic(fmt.Sprintf("colstore: no table %s", name))
	}
	return t
}

// TableNames returns the tables in creation order.
func (s *Store) TableNames() []string { return s.names }

// StringColumns returns every string column of every table.
func (s *Store) StringColumns() []*StringColumn {
	var out []*StringColumn
	for _, name := range s.names {
		out = append(out, s.Tables[name].StringColumns()...)
	}
	return out
}

// Bytes returns the store's total memory footprint.
func (s *Store) Bytes() uint64 {
	var b uint64
	for _, t := range s.Tables {
		b += t.Bytes()
	}
	return b
}

// ResetStats zeroes all dictionary access counters.
func (s *Store) ResetStats() {
	for _, c := range s.StringColumns() {
		c.ResetStats()
	}
}

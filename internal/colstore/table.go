package colstore

import (
	"fmt"
	"sync"

	"strdict/internal/dict"
)

// Table is a set of equally-long columns.
//
// Column definition (AddString/AddInt64/AddFloat64) is serialized against
// column lookup and iteration by an internal RWMutex, so tables can grow
// while merge daemons iterate StringColumns and while readers resolve
// columns by name. The columns themselves keep their own concurrency
// contracts (StringColumn appends are single-writer under appendMu; numeric
// appends are not goroutine-safe and need external exclusion).
type Table struct {
	Name string

	mu        sync.RWMutex
	strCols   map[string]*StringColumn
	intCols   map[string]*Int64Column
	floatCols map[string]*Float64Column
	order     []string // column names in definition order

	// journal, when non-nil, is inherited by columns defined on this table
	// and receives their DDL events. Set by Store.AddTable / SetJournal.
	journal Journal
}

// NewTable returns an empty table.
func NewTable(name string) *Table {
	return &Table{
		Name:      name,
		strCols:   make(map[string]*StringColumn),
		intCols:   make(map[string]*Int64Column),
		floatCols: make(map[string]*Float64Column),
	}
}

// AddString defines a string column with an initial dictionary format.
func (t *Table) AddString(name string, format dict.Format) *StringColumn {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := NewStringColumn(t.Name+"."+name, format)
	c.journal = t.journal
	t.strCols[name] = c
	t.order = append(t.order, name)
	if t.journal != nil {
		t.journal.JournalAddString(t.Name, name, format)
	}
	return c
}

// AddInt64 defines a numeric column.
func (t *Table) AddInt64(name string) *Int64Column {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := NewInt64Column(t.Name + "." + name)
	c.journal = t.journal
	t.intCols[name] = c
	t.order = append(t.order, name)
	if t.journal != nil {
		t.journal.JournalAddInt64(t.Name, name)
	}
	return c
}

// AddFloat64 defines a float column.
func (t *Table) AddFloat64(name string) *Float64Column {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := NewFloat64Column(t.Name + "." + name)
	c.journal = t.journal
	t.floatCols[name] = c
	t.order = append(t.order, name)
	if t.journal != nil {
		t.journal.JournalAddFloat64(t.Name, name)
	}
	return c
}

// Str returns a string column; it panics on unknown names, which are
// programming errors in hand-written query plans.
func (t *Table) Str(name string) *StringColumn {
	c, ok := t.LookupString(name)
	if !ok {
		panic(fmt.Sprintf("colstore: no string column %s.%s", t.Name, name))
	}
	return c
}

// Int returns a numeric column.
func (t *Table) Int(name string) *Int64Column {
	c, ok := t.LookupInt64(name)
	if !ok {
		panic(fmt.Sprintf("colstore: no int column %s.%s", t.Name, name))
	}
	return c
}

// Float returns a float column.
func (t *Table) Float(name string) *Float64Column {
	c, ok := t.LookupFloat64(name)
	if !ok {
		panic(fmt.Sprintf("colstore: no float column %s.%s", t.Name, name))
	}
	return c
}

// LookupString returns a string column by name without panicking.
func (t *Table) LookupString(name string) (*StringColumn, bool) {
	t.mu.RLock()
	c, ok := t.strCols[name]
	t.mu.RUnlock()
	return c, ok
}

// LookupInt64 returns a numeric column by name without panicking.
func (t *Table) LookupInt64(name string) (*Int64Column, bool) {
	t.mu.RLock()
	c, ok := t.intCols[name]
	t.mu.RUnlock()
	return c, ok
}

// LookupFloat64 returns a float column by name without panicking.
func (t *Table) LookupFloat64(name string) (*Float64Column, bool) {
	t.mu.RLock()
	c, ok := t.floatCols[name]
	t.mu.RUnlock()
	return c, ok
}

// ColumnNames returns the column names in definition order.
func (t *Table) ColumnNames() []string {
	t.mu.RLock()
	out := make([]string, len(t.order))
	copy(out, t.order)
	t.mu.RUnlock()
	return out
}

// StringColumns returns the table's string columns in definition order.
func (t *Table) StringColumns() []*StringColumn {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*StringColumn
	for _, name := range t.order {
		if c, ok := t.strCols[name]; ok {
			out = append(out, c)
		}
	}
	return out
}

// Int64Columns returns the table's numeric columns in definition order.
func (t *Table) Int64Columns() []*Int64Column {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*Int64Column
	for _, name := range t.order {
		if c, ok := t.intCols[name]; ok {
			out = append(out, c)
		}
	}
	return out
}

// Float64Columns returns the table's float columns in definition order.
func (t *Table) Float64Columns() []*Float64Column {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*Float64Column
	for _, name := range t.order {
		if c, ok := t.floatCols[name]; ok {
			out = append(out, c)
		}
	}
	return out
}

// Rows returns the number of rows, taken from the first column.
func (t *Table) Rows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, name := range t.order {
		if c, ok := t.strCols[name]; ok {
			return c.Len()
		}
		if c, ok := t.intCols[name]; ok {
			return c.Len()
		}
		if c, ok := t.floatCols[name]; ok {
			return c.Len()
		}
	}
	return 0
}

// MergeAll merges every string column's delta into its main part, keeping
// each column's current format.
func (t *Table) MergeAll() {
	for _, c := range t.StringColumns() {
		c.Merge(c.Format())
	}
}

// Bytes returns the table's total memory footprint.
func (t *Table) Bytes() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var b uint64
	for _, c := range t.strCols {
		b += c.Bytes()
	}
	for _, c := range t.intCols {
		b += c.Bytes()
	}
	for _, c := range t.floatCols {
		b += c.Bytes()
	}
	return b
}

// setJournal installs j on the table and re-announces its schema, called by
// Store.SetJournal under the store lock.
func (t *Table) setJournal(j Journal) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.journal = j
	if j != nil {
		j.JournalAddTable(t.Name)
	}
	for _, colName := range t.order {
		if c, ok := t.strCols[colName]; ok {
			c.setJournal(j)
			if j != nil {
				j.JournalAddString(t.Name, colName, c.Format())
			}
		}
		if c, ok := t.intCols[colName]; ok {
			c.journal = j
			if j != nil {
				j.JournalAddInt64(t.Name, colName)
			}
		}
		if c, ok := t.floatCols[colName]; ok {
			c.journal = j
			if j != nil {
				j.JournalAddFloat64(t.Name, colName)
			}
		}
	}
}

// Store is a set of tables — the whole database.
//
// Table creation is serialized against lookup and iteration by an internal
// RWMutex: AddTable may race with merge daemons walking StringColumns and
// with request handlers resolving tables by name. Direct access to the
// exported Tables map is only safe while no concurrent DDL is running
// (single-threaded setup, tests).
type Store struct {
	Tables map[string]*Table

	mu    sync.RWMutex
	names []string

	// journal, when non-nil, is inherited by tables created on this store.
	// Set via SetJournal (see journal.go).
	journal Journal
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{Tables: make(map[string]*Table)}
}

// AddTable creates and registers a table.
func (s *Store) AddTable(name string) *Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := NewTable(name)
	t.journal = s.journal
	s.Tables[name] = t
	s.names = append(s.names, name)
	if s.journal != nil {
		s.journal.JournalAddTable(name)
	}
	return t
}

// Table returns a table by name, panicking on unknown names.
func (s *Store) Table(name string) *Table {
	t, ok := s.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("colstore: no table %s", name))
	}
	return t
}

// Lookup returns a table by name without panicking.
func (s *Store) Lookup(name string) (*Table, bool) {
	s.mu.RLock()
	t, ok := s.Tables[name]
	s.mu.RUnlock()
	return t, ok
}

// TableNames returns the tables in creation order.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	out := make([]string, len(s.names))
	copy(out, s.names)
	s.mu.RUnlock()
	return out
}

// StringColumns returns every string column of every table.
func (s *Store) StringColumns() []*StringColumn {
	var out []*StringColumn
	for _, name := range s.TableNames() {
		if t, ok := s.Lookup(name); ok {
			out = append(out, t.StringColumns()...)
		}
	}
	return out
}

// Bytes returns the store's total memory footprint.
func (s *Store) Bytes() uint64 {
	var b uint64
	for _, name := range s.TableNames() {
		if t, ok := s.Lookup(name); ok {
			b += t.Bytes()
		}
	}
	return b
}

// ResetStats zeroes all dictionary access counters.
func (s *Store) ResetStats() {
	for _, c := range s.StringColumns() {
		c.ResetStats()
	}
}

// Package strdict is an adaptive string-dictionary compression library for
// in-memory column stores, reproducing Müller, Ratsch and Faerber,
// "Adaptive String Dictionary Compression in In-Memory Column-Store
// Database Systems" (EDBT 2014).
//
// It provides three layers, mirroring the paper's three contributions:
//
//  1. A registry of compressed, order-preserving string dictionary formats:
//     the paper's eighteen survey variants (Section 3) plus registered
//     extensions such as OnPair and LZ78. Build constructs any of them over
//     a sorted string set; every format supports single-tuple extract and
//     locate.
//  2. A size-prediction framework (Section 4): Sample + EstimateSize predict
//     a format's size from a small uniform sample of the column, and
//     CostTable models per-operation runtimes.
//  3. A compression manager (Section 5): Manager maintains a global
//     space/time trade-off parameter c from memory-pressure feedback and
//     selects a format per column whenever its dictionary is rebuilt.
//
// A minimal but complete in-memory column store (package-level Store, Table
// and column types) serves as the substrate, including the write-optimized
// delta, merges, and the query helpers used by the bundled TPC-H
// implementation.
//
// Quick start:
//
//	d, err := strdict.Build(strdict.FCBlock, sortedUniqueStrings)
//	id, found := d.Locate("needle")
//	value := d.Extract(id)
//
// Adaptive selection:
//
//	mgr := strdict.NewManager(strdict.ManagerOptions{DesiredFreeBytes: 4 << 30})
//	mgr.ObserveFreeMemory(currentFree) // feed periodically
//	dec := mgr.ChooseFormat(strdict.ColumnStatsOf(col, lifetimeNs, 0.01, seed))
//	col.Rebuild(dec.Format)
package strdict

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"strdict/internal/colstore"
	"strdict/internal/core"
	"strdict/internal/dict"
	"strdict/internal/model"
	"strdict/internal/persist"
	"strdict/internal/service"
)

// Format identifies a registered dictionary variant.
type Format = dict.Format

// The dictionary formats of the paper's survey (Section 3.3).
const (
	Array       = dict.Array
	ArrayBC     = dict.ArrayBC
	ArrayHU     = dict.ArrayHU
	ArrayNG2    = dict.ArrayNG2
	ArrayNG3    = dict.ArrayNG3
	ArrayRP12   = dict.ArrayRP12
	ArrayRP16   = dict.ArrayRP16
	ArrayFixed  = dict.ArrayFixed
	FCBlock     = dict.FCBlock
	FCBlockBC   = dict.FCBlockBC
	FCBlockDF   = dict.FCBlockDF
	FCBlockHU   = dict.FCBlockHU
	FCBlockNG2  = dict.FCBlockNG2
	FCBlockNG3  = dict.FCBlockNG3
	FCBlockRP12 = dict.FCBlockRP12
	FCBlockRP16 = dict.FCBlockRP16
	FCInline    = dict.FCInline
	ColumnBC    = dict.ColumnBC
)

// Extension formats registered beyond the paper's survey: the OnPair-style
// pair-table dictionary and the LZ78-compressed dictionary.
var (
	OnPair = dict.OnPair
	LZ78   = dict.LZ78
)

// NumFormats returns the number of registered dictionary variants.
func NumFormats() int { return dict.NumFormats() }

// Dictionary is the read-only string dictionary interface (Definition 1):
// Extract(id), Locate(str), Len, Bytes, Format.
type Dictionary = dict.Dictionary

// Build constructs a dictionary of the given format over strs, which must
// be strictly ascending, unique and NUL-free.
func Build(f Format, strs []string) (Dictionary, error) { return dict.Build(f, strs) }

// BuildOptions tunes dictionary construction; Parallelism > 1 encodes
// independent parts (front-coding blocks, array entries) on a bounded worker
// pool. The result is bit-identical to the serial build.
type BuildOptions = dict.BuildOptions

// BuildWithOptions is Build with construction tuning.
func BuildWithOptions(f Format, strs []string, opts BuildOptions) (Dictionary, error) {
	return dict.BuildWithOptions(f, strs, opts)
}

// AllFormats returns every format in declaration order.
func AllFormats() []Format { return dict.AllFormats() }

// ParseFormat converts a format name (e.g. "fc block rp 12") to its value.
func ParseFormat(name string) (Format, error) { return dict.ParseFormat(name) }

// CompressionRate computes the paper's Definition 2: summed string length
// divided by dictionary size.
func CompressionRate(d Dictionary, strs []string) float64 {
	return dict.CompressionRate(d, strs)
}

// Sample carries the sampled properties the size models consume.
type Sample = model.Sample

// TakeSample draws a uniform sample of about ratio*len(strs) strings (at
// least 5000, the paper's production floor) plus aligned blocks for the
// block-based formats.
func TakeSample(strs []string, ratio float64, seed int64) *Sample {
	return model.TakeSample(strs, ratio, seed)
}

// EstimateSize predicts Build(f, column).Bytes() from a sample without
// building the dictionary (Section 4.2).
func EstimateSize(f Format, s *Sample) uint64 { return model.EstimateSize(f, s) }

// CostTable holds per-format runtime constants (Section 4.1).
type CostTable = model.CostTable

// DefaultCostTable returns runtime constants measured on the reference
// machine; Calibrate re-measures them on the current hardware.
func DefaultCostTable() *CostTable { return model.DefaultCostTable() }

// Calibrate determines runtime constants with microbenchmarks over the
// given corpora (sorted unique string sets of a few thousand entries).
func Calibrate(corpora [][]string) *CostTable { return model.Calibrate(corpora) }

// Manager is the compression manager (Section 5): it owns the global
// trade-off parameter c and selects formats at dictionary-rebuild time.
type Manager = core.Manager

// ManagerOptions configures a Manager.
type ManagerOptions = core.Options

// NewManager returns a compression manager.
func NewManager(opts ManagerOptions) *Manager { return core.NewManager(opts) }

// ColumnStats is the manager's per-column input.
type ColumnStats = core.ColumnStats

// Candidate is one format's predicted position in the space/time plane.
type Candidate = core.Candidate

// Decision records a format choice.
type Decision = core.Decision

// Strategy selects the dividing function of Section 5.4.
type Strategy = core.Strategy

// The trade-off selection strategies.
const (
	StrategyConst = core.StrategyConst
	StrategyRel   = core.StrategyRel
	StrategyTilt  = core.StrategyTilt
)

// Candidates evaluates every format for a column.
func Candidates(stats ColumnStats, costs *CostTable) []Candidate {
	return core.Candidates(stats, costs)
}

// Select applies a strategy with trade-off parameter c to candidates.
func Select(strategy Strategy, c float64, cands []Candidate) Candidate {
	return core.Select(strategy, c, cands)
}

// Store is an in-memory column store: tables of dictionary-encoded string
// columns and plain numeric columns.
type Store = colstore.Store

// Table is a set of equally-long columns.
type Table = colstore.Table

// StringColumn is a dictionary-encoded string column with main and delta
// parts. Reads of the main part are lock-free: the column's read state is
// published through an atomic version pointer.
type StringColumn = colstore.StringColumn

// Snapshot pins one consistent, immutable view of a StringColumn —
// dictionary, code vector and delta — so an analytical scan can run a whole
// query against one (dict, codes) pair with zero per-row synchronization.
// Taking a snapshot is O(1) and copies no data; the view is the column as of
// the Snapshot call and never changes afterwards.
type Snapshot = colstore.Snapshot

// Int64Column is a plain numeric column.
type Int64Column = colstore.Int64Column

// Float64Column is a plain float column.
type Float64Column = colstore.Float64Column

// NewStore returns an empty store.
func NewStore() *Store { return colstore.NewStore() }

// ColumnStatsOf assembles the manager's input for a column from its traced
// access counters, lifetime, and a dictionary sample. It pins one snapshot
// for all reads, so the statistics describe a single column state even while
// merges run.
func ColumnStatsOf(c *StringColumn, lifetimeNs float64, sampleRatio float64, seed int64) ColumnStats {
	return ColumnStatsOfSnapshot(c.Snapshot(), lifetimeNs, sampleRatio, seed)
}

// ColumnStatsOfSnapshot is ColumnStatsOf against an explicit pinned
// snapshot — the form merge-time Choosers use, since the scheduler hands
// them the snapshot it decided on.
func ColumnStatsOfSnapshot(s *Snapshot, lifetimeNs float64, sampleRatio float64, seed int64) ColumnStats {
	st := s.Stats()
	return ColumnStats{
		Name:              s.Name(),
		NumStrings:        uint64(s.DictLen()),
		Extracts:          st.Extracts,
		Locates:           st.Locates,
		LifetimeNs:        lifetimeNs,
		ColumnVectorBytes: s.VectorBytes(),
		Sample:            model.TakeSample(s.DictValues(), sampleRatio, seed),
	}
}

// Reconfigure asks the manager for a format for every string column of the
// store and rebuilds the dictionaries accordingly, returning the chosen
// format per column.
func Reconfigure(s *Store, mgr *Manager, lifetimeNs float64, sampleRatio float64, seed int64) map[string]Format {
	return ReconfigureParallel(s, mgr, lifetimeNs, sampleRatio, seed, 1)
}

// ReconfigureParallel is Reconfigure with the per-column work — sampling,
// the all-formats model evaluation, and the dictionary rebuild — fanned out
// across a bounded worker pool (parallelism <= 1 is serial). The trade-off
// parameter is read once per column from the live manager; decisions and
// rebuilt dictionaries are identical to the serial path.
func ReconfigureParallel(s *Store, mgr *Manager, lifetimeNs float64, sampleRatio float64, seed int64, parallelism int) map[string]Format {
	cols := s.StringColumns()
	chosen := make([]Format, len(cols))
	reconfigureColumn := func(i int) {
		decision := mgr.ChooseFormat(ColumnStatsOf(cols[i], lifetimeNs, sampleRatio, seed))
		cols[i].RebuildWithOptions(decision.Format, colstore.MergeOptions{})
		chosen[i] = decision.Format
	}

	workers := parallelism
	if workers > len(cols) {
		workers = len(cols)
	}
	if workers <= 1 {
		for i := range cols {
			reconfigureColumn(i)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(cols) {
						return
					}
					reconfigureColumn(i)
				}
			}()
		}
		wg.Wait()
	}

	out := make(map[string]Format, len(cols))
	for i, c := range cols {
		out[c.Name()] = chosen[i]
	}
	return out
}

// PersistentStore is a Store whose contents survive process crashes: row
// appends go to a group-committed write-ahead log and every merge
// checkpoints the freshly built main part in its compressed form. All Store
// functionality is embedded and journaled transparently.
type PersistentStore = persist.Store

// StoreOptions tunes a persistent store's durability behaviour, including
// the fault-handling knobs: FS (filesystem seam), OnHealth (durability
// state transitions), RetryLimit and RetryBackoff (bounded retry of
// transient I/O faults before the store degrades to read-only).
type StoreOptions = persist.Options

// HealthState is a persistent store's durability state: healthy, degraded
// (a transient I/O fault is being retried), or read-only (a fault outlived
// the retry budget; reads keep working, appends are no longer durable).
type HealthState = persist.HealthState

// The durability health states.
const (
	StateHealthy  = persist.StateHealthy
	StateDegraded = persist.StateDegraded
	StateReadOnly = persist.StateReadOnly
)

// HealthEvent is one durability state transition, delivered to
// StoreOptions.OnHealth off every store lock.
type HealthEvent = persist.HealthEvent

// FS is the filesystem seam the WAL and checkpoint paths write through;
// FaultFS is an FS that injects transient or permanent I/O faults for
// robustness testing (see internal/torture).
type FS = persist.FS

// FaultFS wraps an FS and injects faults per operation class.
type FaultFS = persist.FaultFS

// Op identifies one class of filesystem operation for FaultFS planning.
type Op = persist.Op

// The FaultFS operation classes. The read-side classes (OpReadDir,
// OpReadFile, OpWriteFile, OpTruncate) cover recovery: manifest and part
// loads, WAL replay reads, and torn-tail quarantine, so faults can be
// injected during OpenStore too.
const (
	OpCreate    = persist.OpCreate
	OpWrite     = persist.OpWrite
	OpSync      = persist.OpSync
	OpClose     = persist.OpClose
	OpRename    = persist.OpRename
	OpRemove    = persist.OpRemove
	OpSyncDir   = persist.OpSyncDir
	OpReadDir   = persist.OpReadDir
	OpReadFile  = persist.OpReadFile
	OpWriteFile = persist.OpWriteFile
	OpTruncate  = persist.OpTruncate
)

// CheckpointStats reports the most recent checkpoint's accounting — part
// files written versus re-referenced unchanged and the bytes that hit disk
// — via PersistentStore.LastCheckpoint. A checkpoint with one dirty column
// out of N writes one part and reuses N-1.
type CheckpointStats = persist.CheckpointStats

// RecoveryInfo reports what OpenStore found in the directory: the
// checkpoint it loaded, the WAL rows it replayed, and any torn or corrupt
// regions it quarantined.
type RecoveryInfo = persist.RecoveryInfo

// OpenStore opens (or creates) the persistent store in dir, recovering its
// contents bit-identically to the last durable snapshot: the newest intact
// checkpoint plus the write-ahead log replayed on top. Rows appended after
// OpenStore are durable once fsynced — within StoreOptions.FsyncInterval,
// or immediately after PersistentStore.Sync. Call Checkpoint to persist
// main parts eagerly and Close before exit.
func OpenStore(dir string, opts StoreOptions) (*PersistentStore, error) {
	return persist.Open(dir, opts)
}

// Marshal serializes a dictionary to its versioned binary form, suitable
// for persisting the read-optimized store.
func Marshal(d Dictionary) ([]byte, error) { return dict.Marshal(d) }

// Unmarshal reconstructs a dictionary from Marshal's output. The input is
// validated; corrupt bytes yield dict.ErrCorrupt rather than panics.
func Unmarshal(data []byte) (Dictionary, error) { return dict.Unmarshal(data) }

// MergeScheduler drives delta-to-main merges and tracks per-column merge
// intervals (the lifetime that normalizes the manager's time dimension).
// Due columns merge concurrently on its bounded worker pool (Parallelism
// field; GOMAXPROCS by default) while readers keep querying the old column
// version until each column's atomic publish. Call Start to run it as a
// background daemon with its own timer and append backpressure, Close for
// graceful shutdown; or call Tick cooperatively from the ingest path.
type MergeScheduler = colstore.MergeScheduler

// MergeOptions tunes a merge's dictionary reconstruction.
type MergeOptions = colstore.MergeOptions

// MergeResult reports what a merge actually did: how many delta rows it
// folded into the main part, how many main-part rows it rewrote doing so,
// and whether it rebuilt the dictionary.
type MergeResult = colstore.MergeResult

// MergeStats is a scheduler's per-column merge history: full and partial
// merge counts, cumulative rows folded and rewritten, the interval between
// the last two row-folding full merges, and the append-rate estimate.
type MergeStats = colstore.MergeStats

// NewMergeScheduler returns a scheduler that merges a column once its delta
// holds deltaRowThreshold rows. Set its Chooser to consult a Manager at
// merge time.
func NewMergeScheduler(s *Store, deltaRowThreshold int) *MergeScheduler {
	return colstore.NewMergeScheduler(s, deltaRowThreshold)
}

// DaemonOptions configures StartMergeDaemon.
type DaemonOptions struct {
	// DeltaRowThreshold triggers a merge once a column's delta holds this
	// many rows; <= 0 defaults to 64k rows.
	DeltaRowThreshold int
	// Interval is the daemon's timer period; 0 uses the scheduler default.
	Interval time.Duration
	// HighWaterMark, when > 0, throttles Append once a column's unsealed
	// delta reaches this many rows (backpressure).
	HighWaterMark int
	// Parallelism bounds the merge worker pool (0 = GOMAXPROCS) and
	// BuildParallelism the per-dictionary build pool (<= 1 serial).
	Parallelism      int
	BuildParallelism int
	// SampleRatio and Seed parameterize the dictionary sampling behind each
	// merge-time format decision; ratio <= 0 defaults to 0.01.
	SampleRatio float64
	Seed        int64
	// PartialMerges lets the daemon fold only the oldest sealed delta
	// segments of a hot column instead of rebuilding its whole main part:
	// backpressure kicks and columns appending faster than HotRowsPerSec
	// take the partial path (format preserved), while timer merges on
	// cooling columns and shutdown flushes stay full (manager consulted).
	PartialMerges bool
	// HotRowsPerSec is the append rate above which a timer merge goes
	// partial; <= 0 derives a rate from DeltaRowThreshold. Ignored unless
	// PartialMerges is set.
	HotRowsPerSec float64
	// AdaptiveInterval retunes the daemon timer from observed append rates:
	// hot stores tick faster (down to Interval/8), idle stores back off (up
	// to Interval*8).
	AdaptiveInterval bool
	// OnMergeError, when non-nil, is invoked (from merge pool workers) when
	// a merge leaves the store's journal with a sticky durability failure —
	// the daemon reports rather than swallows checkpoint/WAL errors. The
	// same error is reported once, not once per merged column.
	OnMergeError func(column string, err error)
}

// StartMergeDaemon wires a MergeScheduler to a Manager and starts it as a
// long-running background daemon: merges run on the daemon's own timer (and
// immediately under backpressure), each consulting the manager on a pinned
// snapshot of the column, with no cooperative Tick calls from the ingest
// path. A nil manager keeps every column's current format. Stop it with
// Close (drains all deltas) or by cancelling ctx.
func StartMergeDaemon(ctx context.Context, s *Store, mgr *Manager, opts DaemonOptions) *MergeScheduler {
	threshold := opts.DeltaRowThreshold
	if threshold <= 0 {
		threshold = 64 << 10
	}
	sched := NewMergeScheduler(s, threshold)
	sched.Interval = opts.Interval
	sched.HighWaterMark = opts.HighWaterMark
	sched.Parallelism = opts.Parallelism
	sched.BuildParallelism = opts.BuildParallelism
	sched.PartialMerges = opts.PartialMerges
	sched.HotRowsPerSec = opts.HotRowsPerSec
	sched.AdaptiveInterval = opts.AdaptiveInterval
	sched.OnError = opts.OnMergeError
	if mgr != nil {
		ratio := opts.SampleRatio
		if ratio <= 0 {
			ratio = 0.01
		}
		seed := opts.Seed
		sched.Chooser = func(snap *Snapshot, lifetimeNs float64) Format {
			return mgr.ChooseFormat(ColumnStatsOfSnapshot(snap, lifetimeNs, ratio, seed)).Format
		}
	}
	sched.Start(ctx)
	return sched
}

// ServiceServer is the sharded multi-tenant store service: N independent
// shards (each its own Store, merge daemon and journal), a deterministic
// (tenant, table) -> shard routing function, and an HTTP JSON API with
// batched group-committed appends and snapshot-pinned queries. An
// in-process gossip loop exchanges memory pressure between shards and
// steers each shard's compression trade-off towards ServiceOptions.
// MemoryBudget. Mount Handler on any net/http server; Close drains the
// daemons and closes the journals.
type ServiceServer = service.Server

// ServiceOptions configures Serve: shard count, journal directory and fsync
// cadence, the server-wide memory budget the gossip loop steers towards,
// merge-daemon tuning, and the scan-response row cap.
type ServiceOptions = service.Options

// ServiceClient is the typed client for the service's /v1 JSON API: Append
// (batched), CountEq, ScanEq, ScanRange, Locate, Stats and Health.
type ServiceClient = service.Client

// ServiceAppendItem is one element of a batched ServiceClient.Append: n
// aligned rows for one (tenant, table), given column-wise.
type ServiceAppendItem = service.AppendItem

// ServiceAppendResult is the per-item outcome of a batched append.
type ServiceAppendResult = service.AppendResult

// ServiceScanResult is a scan response: the uncapped match count plus at
// most ServiceOptions.MaxScanRows row indices.
type ServiceScanResult = service.ScanResult

// Serve opens a sharded store server. With ServiceOptions.Dir set, every
// shard recovers its journal from Dir/shard-NNNN and appends are durable
// once the batch's group commit returns; without a Dir the shards are
// in-memory. The caller owns serving the returned handler:
//
//	srv, err := strdict.Serve(strdict.ServiceOptions{Shards: 4, Dir: dir})
//	defer srv.Close()
//	http.ListenAndServe(":8080", srv.Handler())
func Serve(opts ServiceOptions) (*ServiceServer, error) { return service.New(opts) }

// Advice summarizes the decision space for one column: the pareto-optimal
// formats and the automatic selection across the trade-off range — the
// DBA-facing tuning advisor of Section 4.3.
type Advice = core.Advice

// Advise evaluates every format for the column and summarizes the decision
// space; cs lists the trade-off values to probe (nil for a default range).
func Advise(stats ColumnStats, costs *CostTable, cs []float64) Advice {
	return core.Advise(stats, costs, cs)
}

package strdict_test

import (
	"fmt"
	"sort"
	"testing"

	"strdict"
)

func TestFacadeBuildAndLocate(t *testing.T) {
	strs := []string{"ant", "bee", "cat", "dog", "emu"}
	for _, f := range strdict.AllFormats() {
		d, err := strdict.Build(f, strs)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		id, found := d.Locate("cat")
		if !found || id != 2 {
			t.Fatalf("%s: Locate(cat) = (%d,%v)", f, id, found)
		}
		if d.Extract(4) != "emu" {
			t.Fatalf("%s: Extract(4) = %q", f, d.Extract(4))
		}
	}
}

func TestFacadeEstimate(t *testing.T) {
	var strs []string
	for i := 0; i < 6000; i++ {
		strs = append(strs, fmt.Sprintf("part-%07d", i))
	}
	s := strdict.TakeSample(strs, 0.5, 1)
	d, err := strdict.Build(strdict.FCBlock, strs)
	if err != nil {
		t.Fatal(err)
	}
	est := strdict.EstimateSize(strdict.FCBlock, s)
	real := d.Bytes()
	ratio := float64(est) / float64(real)
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("estimate %d vs real %d", est, real)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	// Build a tiny store, trace a workload, reconfigure adaptively.
	store := strdict.NewStore()
	tbl := store.AddTable("items")
	col := tbl.AddString("sku", strdict.FCInline)
	for i := 0; i < 2000; i++ {
		col.Append(fmt.Sprintf("SKU-%08d", i%700))
	}
	col.Merge(strdict.FCInline)
	store.ResetStats()

	// Hot workload: many point reads.
	for i := 0; i < 5000; i++ {
		_ = col.Get(i % col.Len())
	}

	mgr := strdict.NewManager(strdict.ManagerOptions{DesiredFreeBytes: 1 << 30})
	mgr.SetC(10)
	cfg := strdict.Reconfigure(store, mgr, 1e9, 1.0, 1)
	if len(cfg) != 1 {
		t.Fatalf("config %v", cfg)
	}
	// Data still correct after the adaptive rebuild.
	if got := col.Get(3); got != "SKU-00000003" {
		t.Fatalf("Get after reconfigure = %q", got)
	}
}

func TestFacadeSelect(t *testing.T) {
	cands := []strdict.Candidate{
		{Format: strdict.Array, SizeBytes: 100, RelTime: 0.1},
		{Format: strdict.FCBlockRP12, SizeBytes: 40, RelTime: 0.5},
	}
	sel := strdict.Select(strdict.StrategyConst, 0, cands)
	if sel.Format != strdict.FCBlockRP12 {
		t.Fatalf("selected %s", sel.Format)
	}
}

func ExampleBuild() {
	words := []string{"delta", "echo", "alfa", "charlie", "bravo"}
	sort.Strings(words)
	d, err := strdict.Build(strdict.FCBlock, words)
	if err != nil {
		panic(err)
	}
	id, found := d.Locate("charlie")
	fmt.Println(id, found, d.Extract(id))
	// Output: 2 true charlie
}

package strdict_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"strdict"
)

func TestFacadeBuildAndLocate(t *testing.T) {
	strs := []string{"ant", "bee", "cat", "dog", "emu"}
	for _, f := range strdict.AllFormats() {
		d, err := strdict.Build(f, strs)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		id, found := d.Locate("cat")
		if !found || id != 2 {
			t.Fatalf("%s: Locate(cat) = (%d,%v)", f, id, found)
		}
		if d.Extract(4) != "emu" {
			t.Fatalf("%s: Extract(4) = %q", f, d.Extract(4))
		}
	}
}

func TestFacadeEstimate(t *testing.T) {
	var strs []string
	for i := 0; i < 6000; i++ {
		strs = append(strs, fmt.Sprintf("part-%07d", i))
	}
	s := strdict.TakeSample(strs, 0.5, 1)
	d, err := strdict.Build(strdict.FCBlock, strs)
	if err != nil {
		t.Fatal(err)
	}
	est := strdict.EstimateSize(strdict.FCBlock, s)
	real := d.Bytes()
	ratio := float64(est) / float64(real)
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("estimate %d vs real %d", est, real)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	// Build a tiny store, trace a workload, reconfigure adaptively.
	store := strdict.NewStore()
	tbl := store.AddTable("items")
	col := tbl.AddString("sku", strdict.FCInline)
	for i := 0; i < 2000; i++ {
		col.Append(fmt.Sprintf("SKU-%08d", i%700))
	}
	col.Merge(strdict.FCInline)
	store.ResetStats()

	// Hot workload: many point reads.
	for i := 0; i < 5000; i++ {
		_ = col.Get(i % col.Len())
	}

	mgr := strdict.NewManager(strdict.ManagerOptions{DesiredFreeBytes: 1 << 30})
	mgr.SetC(10)
	cfg := strdict.Reconfigure(store, mgr, 1e9, 1.0, 1)
	if len(cfg) != 1 {
		t.Fatalf("config %v", cfg)
	}
	// Data still correct after the adaptive rebuild.
	if got := col.Get(3); got != "SKU-00000003" {
		t.Fatalf("Get after reconfigure = %q", got)
	}
}

func TestFacadeSelect(t *testing.T) {
	cands := []strdict.Candidate{
		{Format: strdict.Array, SizeBytes: 100, RelTime: 0.1},
		{Format: strdict.FCBlockRP12, SizeBytes: 40, RelTime: 0.5},
	}
	sel := strdict.Select(strdict.StrategyConst, 0, cands)
	if sel.Format != strdict.FCBlockRP12 {
		t.Fatalf("selected %s", sel.Format)
	}
}

func ExampleBuild() {
	words := []string{"delta", "echo", "alfa", "charlie", "bravo"}
	sort.Strings(words)
	d, err := strdict.Build(strdict.FCBlock, words)
	if err != nil {
		panic(err)
	}
	id, found := d.Locate("charlie")
	fmt.Println(id, found, d.Extract(id))
	// Output: 2 true charlie
}

// TestFacadeDaemonReportsMergeError: the merge daemon surfaces a sticky
// journal failure through DaemonOptions.OnMergeError instead of swallowing
// it — here a permanently failing checkpoint write injected via the FaultFS
// seam in StoreOptions.
func TestFacadeDaemonReportsMergeError(t *testing.T) {
	dir := t.TempDir()
	ffs := &strdict.FaultFS{}
	s, err := strdict.OpenStore(dir, strdict.StoreOptions{
		FsyncInterval: -1,
		FS:            ffs,
		RetryLimit:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	col := s.AddTable("t").AddString("c", strdict.Array)

	reported := make(chan error, 1)
	sched := strdict.StartMergeDaemon(context.Background(), s.Store, nil, strdict.DaemonOptions{
		DeltaRowThreshold: 4,
		Interval:          time.Millisecond,
		OnMergeError: func(column string, err error) {
			select {
			case reported <- fmt.Errorf("%s: %w", column, err):
			default:
			}
		},
	})
	defer sched.Close()

	ffs.FailAll(strdict.OpCreate, errors.New("disk full"),
		func(p string) bool { return strings.HasSuffix(p, ".tmp") })
	for i := 0; i < 64; i++ {
		col.Append(fmt.Sprintf("v-%03d", i))
	}

	select {
	case err := <-reported:
		if !strings.Contains(err.Error(), "disk full") {
			t.Fatalf("reported error = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("merge daemon never reported the journal error")
	}
	if s.Health() != strdict.StateReadOnly {
		t.Fatalf("health = %v, want read-only", s.Health())
	}
	ffs.Clear()
}

module strdict

go 1.22

// Command sysstats regenerates Figures 1 and 2 of the paper: the
// distribution of dictionary sizes and of dictionary memory consumption
// across the synthetic ERP/BW system catalogs.
//
// Usage:
//
//	sysstats [-seed N]
package main

import (
	"flag"
	"os"

	"strdict/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed for the synthetic catalogs")
	flag.Parse()
	experiments.Figures1And2(os.Stdout, *seed)
}

// Command dictbench regenerates the dictionary-survey figures of the paper:
//
//	-figure 3   compression rate vs extract runtime of all variants (src)
//	-figure 4   best compression rates per data set
//	-figure 5   fastest extract runtimes per data set
//	-figure 9   the selection-strategy illustration of Section 5.4
//	-figure locate      locate-time survey (the paper defers this to [33])
//	-figure construct   construction-time survey (also from [33])
//	-figure calibrate   re-measure the runtime-constant table (Section 4.1)
//
// Usage:
//
//	dictbench -figure 3 [-n strings] [-seed N] [-c tradeoff]
package main

import (
	"flag"
	"fmt"
	"os"

	"strdict/internal/datagen"
	"strdict/internal/dict"
	"strdict/internal/experiments"
	"strdict/internal/model"
)

func main() {
	figure := flag.String("figure", "3", "figure to regenerate: 3, 4, 5, 9, locate, construct or calibrate")
	n := flag.Int("n", 20000, "strings per synthetic corpus")
	seed := flag.Int64("seed", 1, "random seed")
	c := flag.Float64("c", 0.5, "trade-off parameter for figure 9")
	flag.Parse()

	switch *figure {
	case "3":
		experiments.Figure3(os.Stdout, *n, *seed)
	case "4":
		experiments.Figure4(os.Stdout, *n, *seed)
	case "5":
		experiments.Figure5(os.Stdout, *n, *seed)
	case "9":
		experiments.Figure9(os.Stdout, *n, *seed, *c)
	case "locate":
		experiments.FigureLocate(os.Stdout, *n, *seed)
	case "construct":
		experiments.FigureConstruct(os.Stdout, *n, *seed)
	case "calibrate":
		corpora := [][]string{
			datagen.Generate("engl", 4000, *seed),
			datagen.Generate("mat", 4000, *seed),
			datagen.Generate("url", 4000, *seed),
		}
		table := model.Calibrate(corpora)
		fmt.Println("runtime constants (ns): extract, locate, construct/string")
		for _, f := range dict.AllFormats() {
			cst := table.Of(f)
			fmt.Printf("%-16s %10.1f %10.1f %10.1f\n", f, cst.ExtractNs, cst.LocateNs, cst.ConstructNs)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
		os.Exit(2)
	}
}

// Command tpchbench regenerates the end-to-end evaluation of Section 6:
//
//	-figure 10   space/time trade-off of fixed-format vs workload-driven
//	             configurations on the string-key TPC-H benchmark, plus the
//	             headline comparison against fc block
//	-figure 11   distribution of the formats the compression manager selects
//	             as a function of the trade-off parameter c
//	-figure both (default) runs both on one shared trace
//	-figure strategies   ablation: const vs rel vs tilt end to end
//	-figure workload     traced per-column dictionary operation counts
//	-figure daemon       online refresh stream with the background merge
//	                     daemon adapting formats at every merge
//
// Usage:
//
//	tpchbench [-figure both] [-sf 0.02] [-seed N] [-trace 2] [-reps 3] [-sample 0.01]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"strdict/internal/experiments"
)

func main() {
	figure := flag.String("figure", "both", "figure to regenerate: 10, 11, both, strategies, workload or daemon")
	sf := flag.Float64("sf", 0.02, "TPC-H scale factor")
	seed := flag.Int64("seed", 1, "random seed")
	trace := flag.Int("trace", 2, "workload repetitions for the trace")
	reps := flag.Int("reps", 3, "repetitions per configuration measurement")
	sample := flag.Float64("sample", 0.01, "sampling ratio for the size models")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker pool for per-column format selection (1 = serial)")
	partial := flag.Bool("partial", false,
		"daemon figure only: fold hot columns partially instead of full merges")
	persistDir := flag.String("persist", "",
		"run the durability report against this directory (WAL + checkpoints + recovery) instead of a figure")
	flag.Parse()

	cfg := experiments.TPCHConfig{
		ScaleFactor:   *sf,
		Seed:          *seed,
		TraceReps:     *trace,
		MeasureReps:   *reps,
		SampleRatio:   *sample,
		Parallelism:   *parallel,
		PartialMerges: *partial,
	}
	if *persistDir != "" {
		if err := experiments.PersistReport(os.Stdout, cfg, *persistDir); err != nil {
			fmt.Fprintf(os.Stderr, "persist report: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *figure == "daemon" {
		// No offline trace: the daemon report is the online protocol.
		experiments.DaemonReport(os.Stdout, cfg, *reps)
		return
	}
	e := experiments.NewTPCHExperiment(cfg)
	switch *figure {
	case "10":
		experiments.Figure10(os.Stdout, e)
	case "11":
		experiments.Figure11(os.Stdout, e)
	case "both":
		experiments.Figure10(os.Stdout, e)
		fmt.Println()
		experiments.Figure11(os.Stdout, e)
	case "strategies":
		experiments.StrategyComparison(os.Stdout, e, 0.5)
	case "workload":
		experiments.TraceAndReport(os.Stdout, e)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
		os.Exit(2)
	}
}

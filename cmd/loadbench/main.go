// Command loadbench drives a sharded strdict service with a multi-tenant,
// Zipf-skewed, mixed read/write workload and reports ingest throughput,
// query latency percentiles, and per-shard balance.
//
// By default it starts an in-process server on a loopback listener (so the
// measured path includes HTTP, JSON, routing, shard locks and the WAL
// group commit) and tears it down afterwards; -addr points it at an
// external server instead.
//
//	loadbench -shards 4 -tenants 16 -tables 32 -concurrency 16 \
//	  -duration 3s -read-frac 0.1 -batch 500 -json out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"strdict/internal/service"
)

type report struct {
	Shards      int     `json:"shards"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`
	ReadFrac    float64 `json:"read_frac"`
	BatchRows   int     `json:"batch_rows"`
	Tenants     int     `json:"tenants"`
	Tables      int     `json:"tables"`

	IngestRows    uint64  `json:"ingest_rows"`
	IngestRowsSec float64 `json:"ingest_rows_per_sec"`
	Appends       uint64  `json:"appends"`
	Queries       uint64  `json:"queries"`
	QueriesSec    float64 `json:"queries_per_sec"`
	QueryP50Ms    float64 `json:"query_p50_ms"`
	QueryP99Ms    float64 `json:"query_p99_ms"`
	Errors        uint64  `json:"errors"`

	// Balance is min/max rows over the shards that own at least one table
	// (1 = perfectly balanced).
	ShardRows []uint64 `json:"shard_rows,omitempty"`
	Balance   float64  `json:"balance"`
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "loadbench:", err)
	os.Exit(1)
}

func main() {
	var (
		addr        = flag.String("addr", "", "external server base URL (empty: start an in-process server)")
		shards      = flag.Int("shards", 4, "shard count for the in-process server")
		dir         = flag.String("dir", "", "data directory for the in-process server (empty: temp dir, removed afterwards)")
		tenants     = flag.Int("tenants", 16, "number of tenants")
		tables      = flag.Int("tables", 32, "tables per tenant, picked Zipf-skewed")
		zipfS       = flag.Float64("zipf", 1.2, "Zipf skew over tables (>1)")
		concurrency = flag.Int("concurrency", 16, "concurrent workers")
		duration    = flag.Duration("duration", 3*time.Second, "measurement duration")
		readFrac    = flag.Float64("read-frac", 0.1, "fraction of operations that are queries")
		batch       = flag.Int("batch", 500, "rows per append batch")
		values      = flag.Int("values", 400, "distinct values per column pool")
		seed        = flag.Int64("seed", 1, "workload seed")
		jsonOut     = flag.String("json", "", "write the report as JSON to this file ('-' = stdout)")
	)
	flag.Parse()

	base := *addr
	var srv *service.Server
	if base == "" {
		d := *dir
		if d == "" {
			tmp, err := os.MkdirTemp("", "loadbench-*")
			if err != nil {
				fail(err)
			}
			defer os.RemoveAll(tmp)
			d = tmp
		}
		var err error
		srv, err = service.New(service.Options{Shards: *shards, Dir: d})
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
	}

	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = *concurrency
	cl := &service.Client{Base: base, HTTP: &http.Client{Transport: transport}}

	var (
		rows, appends, queries, errs atomic.Uint64
		mu                           sync.Mutex
		latencies                    []time.Duration
		wg                           sync.WaitGroup
	)
	deadline := time.Now().Add(*duration)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			zipf := rand.NewZipf(rng, *zipfS, 1, uint64(*tables-1))
			local := make([]time.Duration, 0, 4096)
			vals := make([]string, *batch)
			for time.Now().Before(deadline) {
				tenant := fmt.Sprintf("tenant-%03d", rng.Intn(*tenants))
				table := fmt.Sprintf("table-%03d", zipf.Uint64())
				if rng.Float64() < *readFrac {
					probe := fmt.Sprintf("val-%05d", rng.Intn(*values))
					start := time.Now()
					_, err := cl.CountEq(tenant, table, "payload", probe)
					local = append(local, time.Since(start))
					queries.Add(1)
					if err != nil {
						if se, ok := err.(*service.StatusError); !ok || se.Code != http.StatusNotFound {
							errs.Add(1) // a table no append touched yet 404s; that is workload, not failure
						}
					}
				} else {
					for i := range vals {
						vals[i] = fmt.Sprintf("val-%05d", rng.Intn(*values))
					}
					_, err := cl.Append([]service.AppendItem{{
						Tenant: tenant,
						Table:  table,
						Strs:   map[string][]string{"payload": vals},
					}})
					appends.Add(1)
					if err != nil {
						errs.Add(1)
					} else {
						rows.Add(uint64(len(vals)))
					}
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := duration.Seconds()

	rep := report{
		Shards:      *shards,
		Concurrency: *concurrency,
		DurationSec: elapsed,
		ReadFrac:    *readFrac,
		BatchRows:   *batch,
		Tenants:     *tenants,
		Tables:      *tables,

		IngestRows:    rows.Load(),
		IngestRowsSec: float64(rows.Load()) / elapsed,
		Appends:       appends.Load(),
		Queries:       queries.Load(),
		QueriesSec:    float64(queries.Load()) / elapsed,
		Errors:        errs.Load(),
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		rep.QueryP50Ms = float64(latencies[len(latencies)/2]) / float64(time.Millisecond)
		rep.QueryP99Ms = float64(latencies[len(latencies)*99/100]) / float64(time.Millisecond)
	}
	if srv != nil {
		minR, maxR := uint64(0), uint64(0)
		for i := 0; i < srv.NumShards(); i++ {
			r := srv.ShardRows(i)
			rep.ShardRows = append(rep.ShardRows, r)
			if i == 0 || r < minR {
				minR = r
			}
			if r > maxR {
				maxR = r
			}
		}
		if maxR > 0 {
			rep.Balance = float64(minR) / float64(maxR)
		}
	}

	fmt.Printf("loadbench: shards=%d conc=%d dur=%.1fs read=%.0f%%\n",
		rep.Shards, rep.Concurrency, rep.DurationSec, rep.ReadFrac*100)
	fmt.Printf("  ingest   %12.0f rows/s  (%d rows, %d batches)\n", rep.IngestRowsSec, rep.IngestRows, rep.Appends)
	fmt.Printf("  queries  %12.0f q/s     p50 %.2fms  p99 %.2fms\n", rep.QueriesSec, rep.QueryP50Ms, rep.QueryP99Ms)
	fmt.Printf("  balance  %.2f  shard rows %v  errors %d\n", rep.Balance, rep.ShardRows, rep.Errors)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fail(err)
		}
	}
	if rep.Errors > 0 {
		fail(fmt.Errorf("%d operations failed", rep.Errors))
	}
}

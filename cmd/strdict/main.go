// Command strdict is the library's end-user utility: build compressed
// dictionaries from newline-separated value files, inspect serialized
// dictionaries, convert between formats, and probe values.
//
// Usage:
//
//	strdict build  -format "fc block" -in values.txt -out dict.sdic
//	strdict info   -in dict.sdic
//	strdict best   -in values.txt [-sample 0.01]
//	strdict get    -in dict.sdic -id 42
//	strdict locate -in dict.sdic -value "needle"
//	strdict convert -in dict.sdic -format "array rp 12" -out small.sdic
//	strdict advise -in values.txt [-extracts N] [-locates N] [-lifetime-ms N]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"strdict"
	"strdict/internal/core"
	"strdict/internal/model"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	in := fs.String("in", "", "input file")
	out := fs.String("out", "", "output file")
	formatName := fs.String("format", "fc block", "dictionary format name")
	id := fs.Uint("id", 0, "value ID for get")
	value := fs.String("value", "", "string for locate")
	sample := fs.Float64("sample", 0.01, "sampling ratio for best")
	extracts := fs.Uint64("extracts", 100000, "expected extracts per lifetime (advise)")
	locates := fs.Uint64("locates", 1000, "expected locates per lifetime (advise)")
	lifetimeMs := fs.Float64("lifetime-ms", 60000, "merge interval in milliseconds (advise)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	switch cmd {
	case "build":
		strs := readValues(*in)
		format := parseFormat(*formatName)
		d, err := strdict.Build(format, strs)
		check(err)
		blob, err := strdict.Marshal(d)
		check(err)
		check(os.WriteFile(*out, blob, 0o644))
		fmt.Printf("built %s: %d strings, %d bytes in memory, %d bytes on disk\n",
			format, d.Len(), d.Bytes(), len(blob))

	case "info":
		d := readDict(*in)
		fmt.Printf("format:  %s\n", d.Format())
		fmt.Printf("entries: %d\n", d.Len())
		fmt.Printf("bytes:   %d\n", d.Bytes())
		if d.Len() > 0 {
			fmt.Printf("first:   %q\n", d.Extract(0))
			fmt.Printf("last:    %q\n", d.Extract(uint32(d.Len()-1)))
		}

	case "best":
		strs := readValues(*in)
		s := strdict.TakeSample(strs, *sample, 1)
		type row struct {
			f    strdict.Format
			size uint64
		}
		var rows []row
		for _, f := range strdict.AllFormats() {
			rows = append(rows, row{f, strdict.EstimateSize(f, s)})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].size < rows[j].size })
		fmt.Printf("predicted sizes for %d strings (sample ratio %g):\n", len(strs), *sample)
		for _, r := range rows {
			fmt.Printf("  %-16s %12d bytes\n", r.f, r.size)
		}

	case "get":
		d := readDict(*in)
		if int(*id) >= d.Len() {
			fail("id %d out of range (0..%d)", *id, d.Len()-1)
		}
		fmt.Println(d.Extract(uint32(*id)))

	case "locate":
		d := readDict(*in)
		lid, found := d.Locate(*value)
		if found {
			fmt.Printf("found: id %d\n", lid)
		} else if int(lid) < d.Len() {
			fmt.Printf("absent: next greater is id %d (%q)\n", lid, d.Extract(lid))
		} else {
			fmt.Println("absent: greater than every entry")
		}

	case "advise":
		strs := readValues(*in)
		stats := core.ColumnStats{
			Name:       *in,
			NumStrings: uint64(len(strs)),
			Extracts:   *extracts,
			Locates:    *locates,
			LifetimeNs: *lifetimeMs * 1e6,
			Sample:     model.TakeSample(strs, *sample, 1),
		}
		core.Advise(stats, model.DefaultCostTable(), nil).WriteReport(os.Stdout, *in)

	case "convert":
		d := readDict(*in)
		strs := make([]string, d.Len())
		var buf []byte
		for i := range strs {
			buf = d.AppendExtract(buf[:0], uint32(i))
			strs[i] = string(buf)
		}
		format := parseFormat(*formatName)
		nd, err := strdict.Build(format, strs)
		check(err)
		blob, err := strdict.Marshal(nd)
		check(err)
		check(os.WriteFile(*out, blob, 0o644))
		fmt.Printf("converted %s (%d bytes) -> %s (%d bytes)\n",
			d.Format(), d.Bytes(), nd.Format(), nd.Bytes())

	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: strdict <build|info|best|get|locate|convert|advise> [flags]")
	os.Exit(2)
}

func check(err error) {
	if err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func parseFormat(name string) strdict.Format {
	f, err := strdict.ParseFormat(name)
	if err != nil {
		var names []string
		for _, ff := range strdict.AllFormats() {
			names = append(names, fmt.Sprintf("%q", ff))
		}
		fail("%v\nknown formats: %s", err, strings.Join(names, ", "))
	}
	return f
}

func readValues(path string) []string {
	if path == "" {
		fail("missing -in")
	}
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	seen := make(map[string]bool)
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !seen[line] && !strings.ContainsRune(line, 0) {
			seen[line] = true
			out = append(out, line)
		}
	}
	check(sc.Err())
	sort.Strings(out)
	return out
}

func readDict(path string) strdict.Dictionary {
	if path == "" {
		fail("missing -in")
	}
	blob, err := os.ReadFile(path)
	check(err)
	d, err := strdict.Unmarshal(blob)
	check(err)
	return d
}

// Command predbench regenerates Figure 6 of the paper: box plots of the
// relative error of the dictionary size predictions for sampling ratios
// 100%, 10%, 1% and max(1%, 5000 strings), over all (variant, data set)
// pairs.
//
// Usage:
//
//	predbench [-n strings] [-seed N]
package main

import (
	"flag"
	"os"

	"strdict/internal/experiments"
)

func main() {
	n := flag.Int("n", 20000, "strings per synthetic corpus")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	experiments.Figure6(os.Stdout, *n, *seed)
}
